#include "resacc/graph/dynamic/mutable_graph_view.h"

#include <algorithm>
#include <utility>

#include "resacc/graph/graph_snapshot.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

std::size_t BitWords(NodeId num_nodes) {
  return (static_cast<std::size_t>(num_nodes) + 63) / 64;
}

std::shared_ptr<const DeltaOverlay> EmptyOverlay(const Graph& base) {
  auto overlay = std::make_shared<DeltaOverlay>();
  overlay->base_num_nodes = base.num_nodes();
  overlay->num_nodes = base.num_nodes();
  overlay->num_edges = base.num_edges();
  overlay->out_dirty.assign(BitWords(base.num_nodes()), 0);
  overlay->in_dirty.assign(BitWords(base.num_nodes()), 0);
  return overlay;
}

void GrowBitmaps(DeltaOverlay& overlay, NodeId num_nodes) {
  const std::size_t words = BitWords(num_nodes);
  if (overlay.out_dirty.size() < words) overlay.out_dirty.resize(words, 0);
  if (overlay.in_dirty.size() < words) overlay.in_dirty.resize(words, 0);
}

const DeltaOverlay::Row& SharedEmptyRow() {
  static const DeltaOverlay::Row row =
      std::make_shared<const std::vector<NodeId>>();
  return row;
}

}  // namespace

// The unit of atomic publication: Snapshot() pins one of these, so a
// reader's base and overlay always belong to the same version.
struct MutableGraphView::Shared {
  std::shared_ptr<const Graph> base;  // flat: never carries an overlay
  std::shared_ptr<const DeltaOverlay> overlay;
};

MutableGraphView::MutableGraphView(Graph base, MutableGraphOptions options)
    : options_(std::move(options)), generation_(options_.initial_generation) {
  // A base that is itself an overlay snapshot is folded flat first, so the
  // view never stacks overlays.
  auto flat = base.has_overlay()
                  ? std::make_shared<const Graph>(base)  // copy materializes
                  : std::make_shared<const Graph>(std::move(base));
  auto shared = std::make_shared<Shared>();
  shared->overlay = EmptyOverlay(*flat);
  shared->base = std::move(flat);
  current_ = std::move(shared);
  if (options_.compact_threshold_rows > 0) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
}

MutableGraphView::~MutableGraphView() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutting_down_ = true;
    }
    compact_cv_.notify_all();
    compactor_.join();
  }
}

std::shared_ptr<const MutableGraphView::Shared> MutableGraphView::Current()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

Graph MutableGraphView::Snapshot() const {
  std::shared_ptr<const Shared> pinned = Current();
  // The aliasing handle keeps the whole Shared (base + overlay) alive for
  // the snapshot's lifetime.
  std::shared_ptr<const void> keep_alive(pinned, pinned.get());
  if (pinned->overlay->empty()) {
    // No dirty rows implies no new nodes either (tail nodes are always
    // dirty), so the base alone is the merged graph.
    return pinned->base->ShallowView(std::move(keep_alive));
  }
  return Graph(*pinned->base, pinned->overlay, std::move(keep_alive));
}

std::uint64_t MutableGraphView::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::uint64_t MutableGraphView::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

MutableGraphStats MutableGraphView::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MutableGraphStats stats = lifetime_;
  stats.epoch = epoch_;
  stats.generation = generation_;
  stats.overlay_rows = current_->overlay->dirty_rows();
  stats.overlay_bytes = current_->overlay->MemoryBytes();
  return stats;
}

Status MutableGraphView::AddEdge(NodeId from, NodeId to, GraphDelta* delta) {
  const EdgeMutation mutation{from, to, /*remove=*/false};
  return ApplyBatch({&mutation, 1}, delta);
}

Status MutableGraphView::RemoveEdge(NodeId from, NodeId to,
                                    GraphDelta* delta) {
  const EdgeMutation mutation{from, to, /*remove=*/true};
  return ApplyBatch({&mutation, 1}, delta);
}

NodeId MutableGraphView::AddNode(GraphDelta* delta) {
  NodeId id = 0;
  std::size_t overlay_rows = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto next = std::make_shared<DeltaOverlay>(*current_->overlay);
    id = next->num_nodes++;
    GrowBitmaps(*next, next->num_nodes);
    // Tail nodes are dirty in both directions by construction: a clean
    // bit must always mean "covered by the base spans".
    DeltaOverlay::SetBit(next->out_dirty, id);
    DeltaOverlay::SetBit(next->in_dirty, id);
    next->out_rows.emplace(id, SharedEmptyRow());
    next->in_rows.emplace(id, SharedEmptyRow());
    overlay_rows = next->dirty_rows();
    current_ = std::make_shared<Shared>(
        Shared{current_->base, std::move(next)});
    ++epoch_;
    ++lifetime_.nodes_added;
    if (delta != nullptr) {
      *delta = GraphDelta{};
      delta->epoch = epoch_;
      delta->nodes_added = true;
    }
  }
  MaybeWakeCompactor(overlay_rows);
  return id;
}

Status MutableGraphView::ApplyBatch(std::span<const EdgeMutation> batch,
                                    GraphDelta* delta, std::size_t* skipped) {
  Status status;
  std::size_t overlay_rows = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status = ApplyBatchLocked(batch, delta, skipped);
    overlay_rows = current_->overlay->dirty_rows();
  }
  MaybeWakeCompactor(overlay_rows);
  return status;
}

Status MutableGraphView::ApplyBatchLocked(std::span<const EdgeMutation> batch,
                                          GraphDelta* delta,
                                          std::size_t* skipped) {
  const Graph& base = *current_->base;
  const NodeId base_n = base.num_nodes();
  auto next = std::make_shared<DeltaOverlay>(*current_->overlay);

  // Rows cloned by THIS batch: mutable in place until publication. The
  // clone pointer is also stored in next's maps immediately, so the span
  // lookup below sees in-batch mutations.
  std::unordered_map<NodeId, std::shared_ptr<std::vector<NodeId>>> out_clones;
  std::unordered_map<NodeId, std::shared_ptr<std::vector<NodeId>>> in_clones;

  const auto out_span = [&](NodeId u) -> std::span<const NodeId> {
    if (DeltaOverlay::TestBit(next->out_dirty, u)) return *next->out_rows.at(u);
    return base.OutNeighbors(u);  // u < base_n: tail nodes are always dirty
  };
  const auto clone_row =
      [](std::unordered_map<NodeId, std::shared_ptr<std::vector<NodeId>>>&
             clones,
         std::unordered_map<NodeId, DeltaOverlay::Row>& rows,
         std::vector<std::uint64_t>& dirty, NodeId u,
         std::span<const NodeId> current_row) -> std::vector<NodeId>& {
    auto it = clones.find(u);
    if (it != clones.end()) return *it->second;
    auto row = std::make_shared<std::vector<NodeId>>(current_row.begin(),
                                                     current_row.end());
    DeltaOverlay::SetBit(dirty, u);
    rows[u] = row;
    return *clones.emplace(u, std::move(row)).first->second;
  };
  const auto mutable_out = [&](NodeId u) -> std::vector<NodeId>& {
    const std::span<const NodeId> row =
        DeltaOverlay::TestBit(next->out_dirty, u)
            ? std::span<const NodeId>(*next->out_rows.at(u))
            : base.OutNeighbors(u);
    return clone_row(out_clones, next->out_rows, next->out_dirty, u, row);
  };
  const auto mutable_in = [&](NodeId u) -> std::vector<NodeId>& {
    const std::span<const NodeId> row =
        DeltaOverlay::TestBit(next->in_dirty, u)
            ? std::span<const NodeId>(*next->in_rows.at(u))
            : base.InNeighbors(u);
    return clone_row(in_clones, next->in_rows, next->in_dirty, u, row);
  };

  Status first_error;
  std::size_t applied = 0;
  std::size_t rejected = 0;
  std::uint64_t added = 0;
  std::uint64_t removed = 0;
  std::vector<NodeId> dirty_out;

  for (const EdgeMutation& mutation : batch) {
    Status status;
    const NodeId u = mutation.from;
    const NodeId v = mutation.to;
    if (u >= next->num_nodes || v >= next->num_nodes) {
      status = Status::InvalidArgument("edge endpoint out of range");
    } else if (u == v) {
      status = Status::InvalidArgument(
          "self loops are not representable (paper assumption, II-A)");
    } else {
      const auto row = out_span(u);
      const bool present = std::binary_search(row.begin(), row.end(), v);
      if (!mutation.remove && present) {
        status = Status::AlreadyExists("edge already present");
      } else if (mutation.remove && !present) {
        status = Status::NotFound("edge not present");
      }
    }
    if (!status.ok()) {
      if (first_error.ok()) first_error = status;
      ++rejected;
      continue;
    }

    std::vector<NodeId>& out_row = mutable_out(u);
    std::vector<NodeId>& in_row = mutable_in(v);
    if (mutation.remove) {
      out_row.erase(std::lower_bound(out_row.begin(), out_row.end(), v));
      in_row.erase(std::lower_bound(in_row.begin(), in_row.end(), u));
      --next->num_edges;
      ++removed;
    } else {
      out_row.insert(std::lower_bound(out_row.begin(), out_row.end(), v), v);
      in_row.insert(std::lower_bound(in_row.begin(), in_row.end(), u), u);
      ++next->num_edges;
      ++added;
    }
    dirty_out.push_back(u);
    ++applied;
  }

  if (skipped != nullptr) *skipped = rejected;
  if (applied == 0) {
    if (delta != nullptr) *delta = GraphDelta{};
    // Nothing changed: keep the current version (no epoch bump, no
    // invalidation work downstream).
    return rejected > 0 ? first_error : Status::Ok();
  }

  std::sort(dirty_out.begin(), dirty_out.end());
  dirty_out.erase(std::unique(dirty_out.begin(), dirty_out.end()),
                  dirty_out.end());

  current_ = std::make_shared<Shared>(Shared{current_->base, std::move(next)});
  ++epoch_;
  lifetime_.edges_added += added;
  lifetime_.edges_removed += removed;
  if (delta != nullptr) {
    *delta = GraphDelta{};
    delta->epoch = epoch_;
    delta->dirty_out = std::move(dirty_out);
    delta->edges_added = added;
    delta->edges_removed = removed;
  }
  (void)base_n;
  return Status::Ok();
}

void MutableGraphView::MaybeWakeCompactor(std::size_t overlay_rows) {
  if (options_.compact_threshold_rows == 0 ||
      overlay_rows < options_.compact_threshold_rows) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    compact_requested_ = true;
  }
  compact_cv_.notify_one();
}

void MutableGraphView::CompactorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    compact_cv_.wait(lock,
                     [this] { return compact_requested_ || shutting_down_; });
    if (shutting_down_) return;
    compact_requested_ = false;
    lock.unlock();
    Compact();
    lock.lock();
  }
}

CompactionInfo MutableGraphView::Compact() {
  Timer timer;
  CompactionInfo info;

  std::shared_ptr<const Shared> pinned;
  std::uint64_t pinned_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pinned = current_;
    pinned_epoch = epoch_;
    info.generation = generation_;
    info.epoch = epoch_;
  }
  if (pinned->overlay->empty()) {
    info.seconds = timer.ElapsedSeconds();
    return info;  // nothing to fold
  }
  info.folded_rows = pinned->overlay->dirty_rows();

  // The O(n + m) fold runs without the lock: materialize the pinned
  // epoch's merged CSR into a fresh owned graph.
  const Graph merged(*pinned->base, pinned->overlay,
                     std::shared_ptr<const void>(pinned, pinned.get()));
  auto folded = std::make_shared<const Graph>(merged);  // copy materializes

  {
    std::lock_guard<std::mutex> lock(mutex_);
    info.generation = ++generation_;
    ++lifetime_.compactions;
    std::shared_ptr<const DeltaOverlay> rebased;
    if (epoch_ == pinned_epoch) {
      rebased = EmptyOverlay(*folded);
    } else {
      // Mutations landed during the fold. Every currently-dirty row is
      // content-complete (a full replacement row), so the whole live
      // overlay remains valid over the new base: rows the fold already
      // captured override it with identical content until the next
      // compaction sweeps them up.
      auto next = std::make_shared<DeltaOverlay>(*current_->overlay);
      next->base_num_nodes = folded->num_nodes();
      rebased = std::move(next);
    }
    current_ = std::make_shared<Shared>(Shared{folded, std::move(rebased)});
  }

  if (!options_.snapshot_path_prefix.empty()) {
    info.snapshot_path = options_.snapshot_path_prefix + ".gen" +
                         std::to_string(info.generation) + ".rsg";
    info.snapshot_status =
        SaveSnapshot(*folded, info.snapshot_path, info.generation);
  }
  info.seconds = timer.ElapsedSeconds();
  if (compaction_callback_) compaction_callback_(info);
  return info;
}

}  // namespace resacc

#include "resacc/graph/dynamic/invalidation.h"

#include <limits>

namespace resacc {

double MutationInfluence(const GraphDelta& delta, double alpha,
                         const std::vector<Score>& scores) {
  if (delta.nodes_added) {
    return std::numeric_limits<double>::infinity();
  }
  double mass = 0.0;
  for (const NodeId u : delta.dirty_out) {
    if (static_cast<std::size_t>(u) >= scores.size()) {
      return std::numeric_limits<double>::infinity();
    }
    mass += static_cast<double>(scores[u]);
  }
  return 2.0 * (1.0 - alpha) / alpha * mass;
}

}  // namespace resacc

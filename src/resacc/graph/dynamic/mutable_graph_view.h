#ifndef RESACC_GRAPH_DYNAMIC_MUTABLE_GRAPH_VIEW_H_
#define RESACC_GRAPH_DYNAMIC_MUTABLE_GRAPH_VIEW_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "resacc/graph/dynamic/delta_overlay.h"
#include "resacc/graph/graph.h"
#include "resacc/util/status.h"
#include "resacc/util/types.h"

namespace resacc {

// One edge mutation in a batch. `remove` distinguishes RemoveEdge from
// AddEdge.
struct EdgeMutation {
  NodeId from = 0;
  NodeId to = 0;
  bool remove = false;
};

// What one published mutation batch changed — the serve layer's input for
// guarantee-preserving cache invalidation (dynamic/invalidation.h).
struct GraphDelta {
  // Epoch the graph reached by applying the batch.
  std::uint64_t epoch = 0;
  // Nodes whose *out*-row changed: exactly the rewritten rows of the
  // transition matrix, which is what perturbs RWR scores. Deduplicated.
  std::vector<NodeId> dirty_out;
  // Any AddNode in the batch (score vectors change length; cached entries
  // for older epochs cannot be repaired and must be dropped).
  bool nodes_added = false;
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;

  bool empty() const {
    return dirty_out.empty() && !nodes_added && edges_added == 0 &&
           edges_removed == 0;
  }
};

struct MutableGraphOptions {
  // Fold the overlay into a fresh base once it carries at least this many
  // dirty rows, on the background compaction thread. 0 disables automatic
  // compaction (Compact() still works on demand).
  std::size_t compact_threshold_rows = 0;
  // When non-empty, every compaction also persists the folded base as
  // `<prefix>.gen<G>.rsg` with generation G stamped in the snapshot
  // header (graph_snapshot.h). Failures to write are reported in
  // CompactionInfo but never block the in-memory swap.
  std::string snapshot_path_prefix;
  // Generation of the initial base (e.g. from SnapshotLoadInfo when the
  // base came from a .rsg file); compactions count up from here.
  std::uint64_t initial_generation = 0;
};

struct CompactionInfo {
  std::uint64_t generation = 0;  // generation of the new base
  std::uint64_t epoch = 0;       // epoch the folded base captures
  std::size_t folded_rows = 0;   // overlay rows folded into the base
  double seconds = 0.0;
  // Path of the persisted .rsg (empty when persistence is off) and the
  // write outcome; the in-memory swap has already happened either way.
  std::string snapshot_path;
  Status snapshot_status;
};

struct MutableGraphStats {
  std::uint64_t epoch = 0;
  std::uint64_t generation = 0;
  std::uint64_t edges_added = 0;    // lifetime, across compactions
  std::uint64_t edges_removed = 0;
  std::uint64_t nodes_added = 0;
  std::uint64_t compactions = 0;
  std::size_t overlay_rows = 0;     // dirty rows in the live overlay
  std::size_t overlay_bytes = 0;
};

// A live graph: an immutable base CSR (owned or mmap-borrowed) plus a
// row-granular DeltaOverlay, behind a thread-safe mutation API.
//
// Concurrency model (DESIGN.md "Dynamic graphs"):
//   * Mutations (AddEdge/RemoveEdge/AddNode/ApplyBatch) serialize on an
//     internal mutex. Each successful batch publishes a new immutable
//     overlay version and bumps the epoch.
//   * Readers call Snapshot() to pin an epoch: the returned Graph is an
//     immutable, self-contained view (it keeps the base and its overlay
//     version alive) that later mutations and compactions never touch, so
//     an in-flight query always sees one consistent graph.
//   * Compaction folds base + overlay into a fresh owned CSR, bumps the
//     generation, atomically swaps the base, and rebases the overlay
//     (which is empty unless mutations landed during the fold). Readers
//     swap over on their next Snapshot(); pinned epochs stay valid.
//
// Equivalence contract: a Snapshot() is *bit-identical*, row by row, to a
// GraphBuilder build of the same edge set — rows stay sorted ascending
// and deduplicated, self loops are rejected — so every solver produces
// bit-identical scores on the live view and on a fresh load (enforced by
// dynamic_graph_test and the conformance suite).
class MutableGraphView {
 public:
  explicit MutableGraphView(Graph base, MutableGraphOptions options = {});
  ~MutableGraphView();

  MutableGraphView(const MutableGraphView&) = delete;
  MutableGraphView& operator=(const MutableGraphView&) = delete;

  // Single-edge mutations: one published epoch each. kInvalidArgument for
  // out-of-range endpoints or a self loop, kAlreadyExists for a duplicate
  // AddEdge, kNotFound for removing a missing edge. `delta` (optional)
  // receives what changed, for cache invalidation.
  Status AddEdge(NodeId from, NodeId to, GraphDelta* delta = nullptr);
  Status RemoveEdge(NodeId from, NodeId to, GraphDelta* delta = nullptr);

  // Appends an isolated node and returns its id (ids are never reused).
  NodeId AddNode(GraphDelta* delta = nullptr);

  // Applies the whole batch as ONE epoch — one overlay version, one
  // invalidation pass — which is the efficient shape for churn streams.
  // Individual mutations that fail validation are skipped and counted in
  // `skipped`; the rest apply. Returns non-OK only when nothing applied
  // and at least one mutation failed.
  Status ApplyBatch(std::span<const EdgeMutation> batch,
                    GraphDelta* delta = nullptr,
                    std::size_t* skipped = nullptr);

  // Epoch-pinned immutable view; cheap (no CSR copy). See class comment.
  Graph Snapshot() const;

  std::uint64_t epoch() const;
  std::uint64_t generation() const;
  MutableGraphStats stats() const;

  // Folds the current overlay into a fresh base now (see class comment)
  // and returns what happened. Runs the O(n + m) fold on the calling
  // thread without blocking mutations or readers; only the final swap
  // takes the mutex.
  CompactionInfo Compact();

  // Invoked (on the mutating/compacting thread, outside the lock) after
  // every compaction — the serve layer uses it to re-point workers at the
  // folded base. Set once, before mutations start.
  void set_compaction_callback(std::function<void(const CompactionInfo&)> cb) {
    compaction_callback_ = std::move(cb);
  }

 private:
  struct Shared;  // base + overlay pair published atomically

  std::shared_ptr<const Shared> Current() const;
  Status ApplyBatchLocked(std::span<const EdgeMutation> batch,
                          GraphDelta* delta, std::size_t* skipped);
  void MaybeWakeCompactor(std::size_t overlay_rows);
  void CompactorLoop();

  const MutableGraphOptions options_;
  std::function<void(const CompactionInfo&)> compaction_callback_;

  mutable std::mutex mutex_;
  std::shared_ptr<const Shared> current_;
  std::uint64_t epoch_ = 0;
  std::uint64_t generation_ = 0;
  MutableGraphStats lifetime_;  // counters only; epoch/generation derived

  // Background compaction (armed iff compact_threshold_rows > 0).
  std::thread compactor_;
  std::condition_variable compact_cv_;
  bool compact_requested_ = false;
  bool shutting_down_ = false;
};

}  // namespace resacc

#endif  // RESACC_GRAPH_DYNAMIC_MUTABLE_GRAPH_VIEW_H_

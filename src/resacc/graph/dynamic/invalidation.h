#ifndef RESACC_GRAPH_DYNAMIC_INVALIDATION_H_
#define RESACC_GRAPH_DYNAMIC_INVALIDATION_H_

#include <vector>

#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/util/types.h"

namespace resacc {

// Guarantee-preserving cache invalidation for live graphs.
//
// A cached vector pi(s, .) was computed at an older epoch. A mutation
// batch rewrote the out-rows of delta.dirty_out — i.e. the corresponding
// rows of the transition matrix P. Writing the perturbed matrix P' = P +
// E, the RWR solution pi' = alpha * e_s * (I - (1-alpha) P')^-1 satisfies
//
//   || pi' - pi ||_1 <= (1 - alpha) / alpha * || pi_rows(E) ||_1
//                    <= (1 - alpha) / alpha * 2 * sum_{u dirty} pi(s, u)
//
// because row u of E has L1 mass at most 2 (a row of P changed to another
// row of P), weighted by how much stationary mass pi(s, u) the cached
// walk puts on u. MutationInfluence returns that bound (without the
// factor 2 sharpened away: we keep it, staying conservative):
//
//   influence = 2 * (1 - alpha) / alpha * sum_{u in dirty_out} scores[u]
//
// An entry whose *cumulative* influence since it was computed stays under
// the caller's drift budget (ResultCache::InvalidateEpoch accumulates it
// per entry, in the spirit of the offset-maintenance argument of arXiv
// 1712.00595) still satisfies a slackened epsilon-delta guarantee and may
// be promoted to the new epoch instead of dropped. Entries touching real
// mass get dropped; entries whose walks never reach the mutated rows
// survive churn — that asymmetry is the whole point (BENCH_dynamic.json
// measures it against a flush-everything baseline).
//
// Returns +infinity when the delta added nodes (score vectors change
// length; no repair possible) or a dirty node is outside the cached
// vector (same situation observed from the entry's side).
double MutationInfluence(const GraphDelta& delta, double alpha,
                         const std::vector<Score>& scores);

}  // namespace resacc

#endif  // RESACC_GRAPH_DYNAMIC_INVALIDATION_H_

#ifndef RESACC_GRAPH_DYNAMIC_DELTA_OVERLAY_H_
#define RESACC_GRAPH_DYNAMIC_DELTA_OVERLAY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "resacc/util/check.h"
#include "resacc/util/types.h"

namespace resacc {

// One published version of the in-memory delta a MutableGraphView layers
// over its immutable base CSR (DESIGN.md "Dynamic graphs").
//
// The overlay is *row-granular copy-on-write*: a node whose adjacency was
// touched by any mutation owns a complete replacement row (sorted
// ascending, deduplicated — the same invariants GraphBuilder establishes),
// while every untouched node keeps reading the base CSR in place. Merged
// iteration therefore costs one bit test per node on the hot path and
// never copies the base arrays; only mutated rows are materialized, at
// O(degree) once per (node, direction).
//
// New nodes live in a logical tail [base_num_nodes, num_nodes): they are
// always marked dirty in both directions (their rows, possibly empty, are
// in the maps), so a clean bit implies the node is safely covered by the
// base spans. Node removal is expressed as removing the node's edges; ids
// are never reused, which is what keeps cached score vectors indexable.
//
// A DeltaOverlay is immutable once published: MutableGraphView builds the
// next version by copying the maps (shallow — rows are shared_ptr) and
// cloning only the rows the batch touches, then publishes it atomically.
// Readers pin a version via shared_ptr from Graph snapshots and are never
// blocked or invalidated by later mutations.
struct DeltaOverlay {
  using Row = std::shared_ptr<const std::vector<NodeId>>;

  NodeId base_num_nodes = 0;
  // Totals for the merged graph this overlay + base represent.
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;

  // One bit per node (word-packed, sized for num_nodes): set iff the
  // node's row in that direction is overridden by the maps below.
  std::vector<std::uint64_t> out_dirty;
  std::vector<std::uint64_t> in_dirty;
  // Complete replacement rows for dirty nodes. An entry exists for every
  // set dirty bit and vice versa.
  std::unordered_map<NodeId, Row> out_rows;
  std::unordered_map<NodeId, Row> in_rows;

  static bool TestBit(const std::vector<std::uint64_t>& bits, NodeId u) {
    return (bits[u >> 6] >> (u & 63)) & 1;
  }
  static void SetBit(std::vector<std::uint64_t>& bits, NodeId u) {
    bits[u >> 6] |= std::uint64_t{1} << (u & 63);
  }

  bool OutDirty(NodeId u) const { return TestBit(out_dirty, u); }
  bool InDirty(NodeId u) const { return TestBit(in_dirty, u); }

  std::span<const NodeId> OutRow(NodeId u) const {
    const auto it = out_rows.find(u);
    RESACC_DCHECK(it != out_rows.end());
    return *it->second;
  }
  std::span<const NodeId> InRow(NodeId u) const {
    const auto it = in_rows.find(u);
    RESACC_DCHECK(it != in_rows.end());
    return *it->second;
  }

  bool empty() const { return out_rows.empty() && in_rows.empty(); }
  std::size_t dirty_rows() const { return out_rows.size() + in_rows.size(); }

  // Resident bytes of the overlay structures (rows counted once even when
  // shared across versions).
  std::size_t MemoryBytes() const {
    std::size_t bytes = (out_dirty.size() + in_dirty.size()) *
                        sizeof(std::uint64_t);
    for (const auto& [node, row] : out_rows) {
      (void)node;
      bytes += sizeof(NodeId) + row->size() * sizeof(NodeId);
    }
    for (const auto& [node, row] : in_rows) {
      (void)node;
      bytes += sizeof(NodeId) + row->size() * sizeof(NodeId);
    }
    return bytes;
  }
};

}  // namespace resacc

#endif  // RESACC_GRAPH_DYNAMIC_DELTA_OVERLAY_H_

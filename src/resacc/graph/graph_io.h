#ifndef RESACC_GRAPH_GRAPH_IO_H_
#define RESACC_GRAPH_GRAPH_IO_H_

#include <cstddef>
#include <string>

#include "resacc/graph/graph.h"
#include "resacc/util/status.h"

namespace resacc {

// Edge-list text format (SNAP style): one "from<ws>to" pair per line,
// '#'-prefixed comment lines ignored, CRLF tolerated, lines of any
// length. Tokens after the first two integers on a line are ignored
// (weighted edge lists load fine). If the file starts with the
// "# resacc edge list: N nodes" header that SaveEdgeList writes, N is
// honoured, so round-trips preserve trailing isolated nodes; otherwise
// num_nodes = max id + 1.
//
// `symmetrize` treats the file as an undirected graph (each line becomes
// two directed edges), matching the paper's handling of DBLP/Orkut/etc.
//
// `parse_threads` controls parallel ingestion: the file is chunked at
// newline boundaries and the chunks parsed on a ThreadPool. 0 = choose
// automatically (all cores for files >= 1 MiB, sequential below). The
// resulting graph is identical for every thread count.
StatusOr<Graph> LoadEdgeList(const std::string& path, bool symmetrize = false,
                             std::size_t parse_threads = 0);

// Writes the graph as a directed edge list (sorted by source, then target)
// with a "# resacc edge list: N nodes, M edges" header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

// RESACC01 binary format: magic + counts + degree-prefixed out-adjacency
// runs (the in-adjacency is rebuilt on load). An order of magnitude
// faster than text, but still O(m) GraphBuilder work per load; prefer the
// RESACC02 snapshot (graph/graph_snapshot.h) for large graphs.
// Little-endian, not portable across endianness.
Status SaveBinary(const Graph& graph, const std::string& path);
StatusOr<Graph> LoadBinary(const std::string& path);

// Extension dispatch shared by the tools: .rsg -> RESACC02 snapshot
// (mmap, graph_snapshot.h), .bin -> RESACC01 binary, anything else ->
// edge-list text (`symmetrize` applies to text only).
StatusOr<Graph> LoadGraphAuto(const std::string& path,
                              bool symmetrize = false);
Status SaveGraphAuto(const Graph& graph, const std::string& path);

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_IO_H_

#ifndef RESACC_GRAPH_GRAPH_IO_H_
#define RESACC_GRAPH_GRAPH_IO_H_

#include <string>

#include "resacc/graph/graph.h"
#include "resacc/util/status.h"

namespace resacc {

// Edge-list text format (SNAP style): one "from<ws>to" pair per line,
// '#'-prefixed comment lines ignored. Node ids must be < num_nodes when
// given; otherwise num_nodes = max id + 1.
//
// `symmetrize` treats the file as an undirected graph (each line becomes
// two directed edges), matching the paper's handling of DBLP/Orkut/etc.
StatusOr<Graph> LoadEdgeList(const std::string& path, bool symmetrize = false);

// Writes the graph as a directed edge list (sorted by source, then target).
Status SaveEdgeList(const Graph& graph, const std::string& path);

// Binary format: magic + version + counts + raw CSR out-adjacency (the
// in-adjacency is rebuilt on load). Loads an order of magnitude faster
// than text for million-edge graphs. Little-endian, not portable across
// endianness.
Status SaveBinary(const Graph& graph, const std::string& path);
StatusOr<Graph> LoadBinary(const std::string& path);

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_IO_H_

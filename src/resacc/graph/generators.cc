#include "resacc/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "resacc/graph/graph_builder.h"
#include "resacc/util/alias_table.h"
#include "resacc/util/check.h"
#include "resacc/util/rng.h"

namespace resacc {

Graph ErdosRenyi(NodeId num_nodes, EdgeId num_edges, std::uint64_t seed,
                 bool symmetrize) {
  RESACC_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes, symmetrize);
  builder.Reserve(num_edges * (symmetrize ? 2 : 1));
  // Sampling with replacement; the builder dedups. For the sparse graphs we
  // generate (m << n^2) the expected duplicate fraction is negligible.
  for (EdgeId i = 0; i < num_edges; ++i) {
    const NodeId u = rng.NextBounded32(num_nodes);
    NodeId v = rng.NextBounded32(num_nodes - 1);
    if (v >= u) ++v;  // uniform over nodes != u
    builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

namespace {

// Power-law weights w_i = (i + i0)^(-1/(exponent-1)), the standard Chung-Lu
// construction for a degree distribution P(d) ~ d^(-exponent). i0 offsets
// the sequence so the maximum expected degree stays below sqrt(m)-ish,
// keeping edge probabilities valid.
std::vector<double> PowerLawWeights(NodeId n, double exponent, Rng& rng,
                                    bool shuffle) {
  RESACC_CHECK(exponent > 1.0);
  const double power = -1.0 / (exponent - 1.0);
  const double i0 = std::max(1.0, std::pow(static_cast<double>(n), 0.2));
  std::vector<double> weights(n);
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + i0, power);
  }
  if (shuffle) {
    for (NodeId i = n; i > 1; --i) {
      const NodeId j = rng.NextBounded32(i);
      std::swap(weights[i - 1], weights[j]);
    }
  }
  return weights;
}

}  // namespace

Graph ChungLuPowerLaw(NodeId num_nodes, EdgeId num_edges, double exponent,
                      std::uint64_t seed, bool symmetrize,
                      bool in_out_correlated) {
  RESACC_CHECK(num_nodes >= 2);
  Rng rng(seed);
  // Node identities are shuffled so that node id does not encode degree;
  // hop-layer structure should not correlate with ids in tests/benches.
  const std::vector<double> out_weights =
      PowerLawWeights(num_nodes, exponent, rng, /*shuffle=*/true);
  std::vector<double> in_weights = out_weights;
  if (!in_out_correlated) {
    Rng shuffle_rng = rng.Fork(0x1234);
    for (NodeId i = num_nodes; i > 1; --i) {
      const NodeId j = shuffle_rng.NextBounded32(i);
      std::swap(in_weights[i - 1], in_weights[j]);
    }
  }

  const AliasTable out_table(out_weights);
  const AliasTable in_table(in_weights);

  GraphBuilder builder(num_nodes, symmetrize);
  builder.Reserve(num_edges * (symmetrize ? 2 : 1));
  // Draw slightly more raw samples than requested edges to compensate for
  // self-loop rejections and duplicates collapsed by the builder.
  const EdgeId raw_samples = num_edges + num_edges / 8;
  for (EdgeId i = 0; i < raw_samples; ++i) {
    const NodeId u = static_cast<NodeId>(out_table.Sample(rng));
    const NodeId v = static_cast<NodeId>(in_table.Sample(rng));
    if (u != v) builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

Graph BarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                     std::uint64_t seed) {
  RESACC_CHECK(num_nodes > edges_per_node);
  RESACC_CHECK(edges_per_node >= 1);
  Rng rng(seed);
  GraphBuilder builder(num_nodes, /*symmetrize=*/true);

  // Repeated-endpoint list: choosing a uniform element is preferential
  // attachment by degree.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(num_nodes) *
                        edges_per_node * 2);

  // Seed clique over the first edges_per_node + 1 nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      builder.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  for (NodeId u = edges_per_node + 1; u < num_nodes; ++u) {
    for (NodeId e = 0; e < edges_per_node; ++e) {
      const NodeId v =
          endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (v == u) continue;  // occasional lost edge is fine
      builder.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return std::move(builder).Build();
}

Graph WattsStrogatz(NodeId num_nodes, NodeId k, double beta,
                    std::uint64_t seed) {
  RESACC_CHECK(num_nodes > 2 * k);
  RESACC_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(num_nodes, /*symmetrize=*/true);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId j = 1; j <= k; ++j) {
      NodeId v = (u + j) % num_nodes;
      if (rng.Bernoulli(beta)) {
        v = rng.NextBounded32(num_nodes);
        if (v == u) continue;
      }
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Graph PlantedPartition(NodeId num_nodes, NodeId num_blocks, double deg_in,
                       double deg_out, std::uint64_t seed) {
  RESACC_CHECK(num_blocks >= 1);
  RESACC_CHECK(num_nodes >= num_blocks);
  Rng rng(seed);
  const NodeId block_size = num_nodes / num_blocks;
  const NodeId used_nodes = block_size * num_blocks;
  GraphBuilder builder(num_nodes, /*symmetrize=*/true);

  // Expected edge counts; each sampled as endpoints uniform in the blocks.
  const EdgeId within_edges = static_cast<EdgeId>(
      deg_in * static_cast<double>(used_nodes) / 2.0);
  const EdgeId cross_edges = static_cast<EdgeId>(
      deg_out * static_cast<double>(used_nodes) / 2.0);

  for (EdgeId i = 0; i < within_edges; ++i) {
    const NodeId block = rng.NextBounded32(num_blocks);
    const NodeId base = block * block_size;
    const NodeId u = base + rng.NextBounded32(block_size);
    const NodeId v = base + rng.NextBounded32(block_size);
    if (u != v) builder.AddEdge(u, v);
  }
  for (EdgeId i = 0; i < cross_edges; ++i) {
    const NodeId u = rng.NextBounded32(used_nodes);
    const NodeId v = rng.NextBounded32(used_nodes);
    if (u / block_size != v / block_size) builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

}  // namespace resacc

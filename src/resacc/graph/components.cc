#include "resacc/graph/components.h"

#include <algorithm>
#include <deque>

#include "resacc/graph/graph_builder.h"
#include "resacc/util/check.h"

namespace resacc {

std::uint32_t ComponentDecomposition::LargestComponent() const {
  RESACC_CHECK(num_components > 0);
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < num_components; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }
  return best;
}

std::vector<NodeId> ComponentDecomposition::NodesOf(
    std::uint32_t component) const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < component_of.size(); ++v) {
    if (component_of[v] == component) nodes.push_back(v);
  }
  return nodes;
}

ComponentDecomposition WeaklyConnectedComponents(const Graph& graph) {
  ComponentDecomposition result;
  result.component_of.assign(graph.num_nodes(), 0xffffffffu);

  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (result.component_of[start] != 0xffffffffu) continue;
    const std::uint32_t id = result.num_components++;
    std::size_t size = 0;
    std::deque<NodeId> queue{start};
    result.component_of[start] = id;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      ++size;
      auto expand = [&](NodeId w) {
        if (result.component_of[w] == 0xffffffffu) {
          result.component_of[w] = id;
          queue.push_back(w);
        }
      };
      for (NodeId w : graph.OutNeighbors(u)) expand(w);
      for (NodeId w : graph.InNeighbors(u)) expand(w);
    }
    result.sizes.push_back(size);
  }
  return result;
}

ComponentDecomposition StronglyConnectedComponents(const Graph& graph) {
  // Iterative Tarjan. Explicit stack frames: (node, next-neighbour index).
  const NodeId n = graph.num_nodes();
  ComponentDecomposition result;
  result.component_of.assign(n, 0xffffffffu);

  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> low_link(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<NodeId> scc_stack;
  std::uint32_t next_index = 0;

  struct Frame {
    NodeId node;
    std::uint32_t next_neighbor;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = low_link[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId u = frame.node;
      const auto neighbors = graph.OutNeighbors(u);
      if (frame.next_neighbor < neighbors.size()) {
        const NodeId w = neighbors[frame.next_neighbor++];
        if (index[w] == kUnvisited) {
          index[w] = low_link[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low_link[u] = std::min(low_link[u], index[w]);
        }
        continue;
      }
      // u finished: root of an SCC if low_link == index.
      if (low_link[u] == index[u]) {
        const std::uint32_t id = result.num_components++;
        std::size_t size = 0;
        NodeId w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = 0;
          result.component_of[w] = id;
          ++size;
        } while (w != u);
        result.sizes.push_back(size);
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const NodeId parent = call_stack.back().node;
        low_link[parent] = std::min(low_link[parent], low_link[u]);
      }
    }
  }
  return result;
}

Graph InducedSubgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                      std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> mapping(graph.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    RESACC_CHECK(nodes[i] < graph.num_nodes());
    RESACC_CHECK_MSG(mapping[nodes[i]] == kInvalidNode,
                     "duplicate node in induced subgraph set");
    mapping[nodes[i]] = static_cast<NodeId>(i);
  }

  GraphBuilder builder(static_cast<NodeId>(nodes.size()));
  for (NodeId u : nodes) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (mapping[v] != kInvalidNode) {
        builder.AddEdge(mapping[u], mapping[v]);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return std::move(builder).Build();
}

}  // namespace resacc

#ifndef RESACC_GRAPH_GRAPH_STATS_H_
#define RESACC_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "resacc/graph/graph.h"

namespace resacc {

// Descriptive statistics of a graph, for dataset validation (the stand-ins
// must match the paper's density/skew shape) and the CLI `stats` command.
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_out_degree = 0.0;
  NodeId max_out_degree = 0;
  NodeId max_in_degree = 0;
  std::size_t num_sinks = 0;     // d_out = 0
  std::size_t num_sources = 0;   // d_in = 0
  bool is_symmetric = false;     // every edge has its reverse
  std::size_t largest_wcc = 0;   // size of the largest weakly connected comp

  // Degree-distribution tail: fraction of out-degree mass held by the top
  // 1% highest-degree nodes (power-law graphs concentrate heavily here).
  double top1pct_degree_share = 0.0;

  std::string ToString() const;
};

GraphStats ComputeGraphStats(const Graph& graph);

// Out-degree histogram in log2 buckets: bucket i counts nodes with
// out-degree in [2^i, 2^(i+1)); bucket 0 also counts degree 0 and 1.
std::vector<std::size_t> DegreeHistogramLog2(const Graph& graph);

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_STATS_H_

#include "resacc/graph/graph_builder.h"

#include <algorithm>

#include "resacc/util/check.h"

namespace resacc {

void GraphBuilder::AddEdge(NodeId from, NodeId to) {
  RESACC_CHECK(from < num_nodes_);
  RESACC_CHECK(to < num_nodes_);
  if (from == to) return;  // self loops are dropped (paper assumption)
  edges_.emplace_back(from, to);
  if (symmetrize_) edges_.emplace_back(to, from);
}

Graph GraphBuilder::Build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const std::size_t n = num_nodes_;
  const std::size_t m = edges_.size();

  std::vector<EdgeId> out_offsets(n + 1, 0);
  std::vector<NodeId> out_targets(m);
  std::vector<EdgeId> in_offsets(n + 1, 0);
  std::vector<NodeId> in_sources(m);

  for (const auto& [from, to] : edges_) {
    ++out_offsets[from + 1];
    ++in_offsets[to + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    out_offsets[i + 1] += out_offsets[i];
    in_offsets[i + 1] += in_offsets[i];
  }

  // Edges are sorted by (from, to), so a single pass fills out-targets in
  // order; in-sources need a cursor per node.
  std::vector<EdgeId> in_cursor(in_offsets.begin(), in_offsets.end() - 1);
  std::size_t out_pos = 0;
  for (const auto& [from, to] : edges_) {
    out_targets[out_pos++] = to;
    in_sources[in_cursor[to]++] = from;
  }

  edges_.clear();
  edges_.shrink_to_fit();

  return Graph(num_nodes_, std::move(out_offsets), std::move(out_targets),
               std::move(in_offsets), std::move(in_sources));
}

}  // namespace resacc

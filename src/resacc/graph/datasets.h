#ifndef RESACC_GRAPH_DATASETS_H_
#define RESACC_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/status.h"

namespace resacc {

// Scaled synthetic stand-ins for the paper's evaluation datasets
// (Table II). The real SNAP/LAW graphs are not available offline, so each
// stand-in is a deterministic generator call matched in directionality,
// density m/n, and degree skew; see DESIGN.md Section 3 for the
// substitution rationale. Paper-reported statistics are carried along so
// benches can print both.
struct DatasetSpec {
  std::string name;        // e.g. "dblp-sim"
  std::string paper_name;  // e.g. "DBLP"
  bool directed = true;
  double paper_nodes = 0;  // n in the paper (Table II)
  double paper_edges = 0;  // m in the paper
  int hop_parameter = 2;   // h in the paper (Table II, last column)

  // Stand-in size at RESACC_SCALE=1.
  NodeId base_nodes = 0;
  EdgeId base_edges = 0;  // directed edge target

  // Scale-appropriate h for the stand-in: the paper's h keeps |V_h-hop(s)|
  // a small fraction of n on million-node graphs; at bench scale the same
  // fraction is reached one hop earlier (see the Figure 21 bench, which
  // sweeps h and reports hop-set sizes).
  int sim_hops = 1;
};

// All stand-ins, in the paper's Table II order, plus facebook-sim
// (used by the community-detection experiment, Tables V-VI).
const std::vector<DatasetSpec>& AllDatasets();

StatusOr<DatasetSpec> FindDataset(const std::string& name);

// Materializes the stand-in. `scale` multiplies node/edge counts
// (fractional allowed); callers usually pass GetEnvDouble("RESACC_SCALE", 1).
Graph MakeDataset(const DatasetSpec& spec, double scale = 1.0,
                  std::uint64_t seed = 0x5eedULL);

// The subset used as "small + large" representatives in the appendix
// experiments (the paper uses DBLP and Twitter).
std::vector<DatasetSpec> HeadlineDatasets();

// Like MakeDataset, but cached as a RESACC02 snapshot under `cache_dir`
// (keyed by name/scale/seed): the first call generates and saves, later
// calls mmap the snapshot in O(header) time instead of re-generating.
// A cache write failure degrades to returning the freshly built graph.
StatusOr<Graph> LoadOrBuildDataset(const DatasetSpec& spec, double scale,
                                   std::uint64_t seed,
                                   const std::string& cache_dir);

}  // namespace resacc

#endif  // RESACC_GRAPH_DATASETS_H_

#ifndef RESACC_GRAPH_GRAPH_SNAPSHOT_H_
#define RESACC_GRAPH_GRAPH_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "resacc/graph/graph.h"
#include "resacc/util/status.h"

namespace resacc {

// RESACC02 graph snapshot (.rsg): the four CSR arrays (out_offsets,
// out_targets, in_offsets, in_sources) stored as 64-byte-aligned
// contiguous little-endian sections behind a checksummed 128-byte header.
// Loading is one mmap plus O(header) validation — no per-edge work, no
// GraphBuilder — and yields a Graph that borrows the mapped sections
// (Graph::borrows_storage()). docs/API.md "Graph storage" specifies the
// byte layout; the RESACC01 degree-run format (.bin, graph_io.h) stays
// readable for compatibility.

struct SnapshotLoadOptions {
  // Map the file and borrow the sections in place (zero copy). When false,
  // or on platforms without mmap, the sections are read into owned arrays;
  // the resulting graph is bit-identical either way.
  bool prefer_mmap = true;
  // Recompute the section checksum stored in the header and compare
  // (O(file size); off by default so loads stay O(header)).
  bool verify_section_checksum = false;
};

struct SnapshotLoadInfo {
  bool mmap_used = false;
  std::uint64_t file_bytes = 0;
  // Format version parsed from the magic ("RESACC02" -> 2).
  std::uint32_t format_version = 0;
  // Generation stamped at save time (dynamic graphs: bumped per
  // compaction). Snapshots written before the field existed read as 0.
  std::uint64_t generation = 0;
};

// Writes the graph as a RESACC02 snapshot. O(m) once; every later load is
// O(header). `generation` is stamped into the header (see
// SnapshotLoadInfo); compaction of a live graph writes its new base with
// the bumped generation. A graph carrying a delta overlay is materialized
// into a flat CSR first, so the snapshot is always the merged edge set.
Status SaveSnapshot(const Graph& graph, const std::string& path,
                    std::uint64_t generation = 0);

// Loads a RESACC02 snapshot. Validates magic, endianness tag, header
// checksum, section bounds/sizes, and the cheap CSR structural anchors
// (offsets[0] == 0, offsets[n] == m) before handing out the graph.
StatusOr<Graph> LoadSnapshot(const std::string& path,
                             const SnapshotLoadOptions& options = {},
                             SnapshotLoadInfo* info = nullptr);

// FNV-1a (64-bit) over a byte range, chainable via `seed`; the snapshot's
// header and section checksums. Exposed for tests and tooling.
std::uint64_t SnapshotChecksum(
    const void* data, std::size_t bytes,
    std::uint64_t seed = 14695981039346656037ULL);

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_SNAPSHOT_H_

#include "resacc/graph/datasets.h"

#include <algorithm>
#include <cstdio>

#include "resacc/graph/generators.h"
#include "resacc/graph/graph_snapshot.h"
#include "resacc/util/check.h"
#include "resacc/util/logging.h"

namespace resacc {
namespace {

std::vector<DatasetSpec> BuildRegistry() {
  // base_edges counts *directed* edges after symmetrization, matching how
  // the paper's Table II counts m for undirected datasets.
  std::vector<DatasetSpec> specs;
  specs.push_back({"dblp-sim", "DBLP", /*directed=*/false, 317e3, 2.1e6,
                   /*h=*/3, 20000, 132000});
  specs.push_back({"webstan-sim", "Web-Stan", /*directed=*/true, 282e3, 2.3e6,
                   /*h=*/2, 18000, 148000});
  specs.push_back({"pokec-sim", "Pokec", /*directed=*/true, 1.63e6, 30.6e6,
                   /*h=*/2, 24000, 451000});
  specs.push_back({"lj-sim", "LJ", /*directed=*/true, 4.8e6, 69.0e6,
                   /*h=*/2, 28000, 487000});
  specs.push_back({"orkut-sim", "Orkut", /*directed=*/false, 3.1e6, 117.2e6,
                   /*h=*/2, 20000, 762000});
  specs.push_back({"twitter-sim", "Twitter", /*directed=*/true, 41.7e6, 1.5e9,
                   /*h=*/2, 32000, 1130000});
  specs.push_back({"friendster-sim", "Friendster", /*directed=*/false, 65.7e6,
                   2.1e9, /*h=*/2, 36000, 1372000});
  specs.push_back({"facebook-sim", "Facebook", /*directed=*/false, 4039,
                   176468, /*h=*/2, 4000, 176000});
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>& registry =
      *new std::vector<DatasetSpec>(BuildRegistry());
  return registry;
}

StatusOr<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

Graph MakeDataset(const DatasetSpec& spec, double scale, std::uint64_t seed) {
  RESACC_CHECK(scale > 0.0);
  const NodeId n = std::max<NodeId>(
      64, static_cast<NodeId>(static_cast<double>(spec.base_nodes) * scale));
  const EdgeId m_directed = std::max<EdgeId>(
      256, static_cast<EdgeId>(static_cast<double>(spec.base_edges) * scale));

  if (spec.name == "facebook-sim") {
    // Dense small social network with strong community structure: the NISE
    // experiment needs detectable overlapping communities.
    const double avg_deg = static_cast<double>(m_directed) /
                           static_cast<double>(n);  // directed degree
    return PlantedPartition(n, /*num_blocks=*/16,
                            /*deg_in=*/avg_deg * 0.8 / 2.0,
                            /*deg_out=*/avg_deg * 0.2 / 2.0, seed);
  }

  // Per-dataset degree-distribution shape. Lower exponent = heavier tail.
  double exponent = 2.3;
  bool correlated = true;
  if (spec.name == "webstan-sim") {
    exponent = 2.1;
    correlated = false;  // web graphs: in-hubs are not out-hubs
  } else if (spec.name == "pokec-sim" || spec.name == "lj-sim") {
    exponent = 2.15;
  } else if (spec.name == "twitter-sim") {
    exponent = 2.0;  // extreme skew
    correlated = false;
  } else if (spec.name == "friendster-sim") {
    exponent = 2.4;
  }

  if (spec.directed) {
    return ChungLuPowerLaw(n, m_directed, exponent, seed,
                           /*symmetrize=*/false, correlated);
  }
  // Undirected: generate half as many node pairs, symmetrization doubles.
  return ChungLuPowerLaw(n, m_directed / 2, exponent, seed,
                         /*symmetrize=*/true, /*in_out_correlated=*/true);
}

std::vector<DatasetSpec> HeadlineDatasets() {
  return {FindDataset("dblp-sim").value(), FindDataset("twitter-sim").value()};
}

StatusOr<Graph> LoadOrBuildDataset(const DatasetSpec& spec, double scale,
                                   std::uint64_t seed,
                                   const std::string& cache_dir) {
  char key[128];
  std::snprintf(key, sizeof(key), "%s-s%g-%llu.rsg", spec.name.c_str(), scale,
                static_cast<unsigned long long>(seed));
  const std::string path = cache_dir + "/" + key;
  StatusOr<Graph> cached = LoadSnapshot(path);
  if (cached.ok()) return cached;
  Graph built = MakeDataset(spec, scale, seed);
  const Status saved = SaveSnapshot(built, path);
  if (!saved.ok()) {
    RESACC_LOG(Warning) << "dataset snapshot cache write failed: "
                        << saved.ToString();
  }
  return built;
}

}  // namespace resacc

#include "resacc/graph/hop_layers.h"

#include "resacc/util/check.h"

namespace resacc {

std::size_t HopLayers::HopSetSize(std::uint32_t h) const {
  RESACC_CHECK(h < layers.size());
  std::size_t total = 0;
  for (std::uint32_t i = 0; i <= h; ++i) total += layers[i].size();
  return total;
}

HopLayers ComputeHopLayers(const Graph& graph,
                           const std::vector<NodeId>& sources,
                           std::uint32_t max_hop) {
  HopLayers result;
  result.layers.resize(max_hop + 1);
  result.distance.assign(graph.num_nodes(), HopLayers::kUnreached);

  for (NodeId s : sources) {
    RESACC_CHECK(s < graph.num_nodes());
    if (result.distance[s] == HopLayers::kUnreached) {
      result.distance[s] = 0;
      result.layers[0].push_back(s);
    }
  }

  // Level-synchronous BFS: expand layer d into layer d+1.
  for (std::uint32_t d = 0; d < max_hop; ++d) {
    const std::vector<NodeId>& frontier = result.layers[d];
    if (frontier.empty()) break;
    std::vector<NodeId>& next = result.layers[d + 1];
    for (NodeId u : frontier) {
      for (NodeId v : graph.OutNeighbors(u)) {
        if (result.distance[v] == HopLayers::kUnreached) {
          result.distance[v] = d + 1;
          next.push_back(v);
        }
      }
    }
  }
  return result;
}

HopLayers ComputeHopLayers(const Graph& graph, NodeId source,
                           std::uint32_t max_hop) {
  return ComputeHopLayers(graph, std::vector<NodeId>{source}, max_hop);
}

}  // namespace resacc

#include "resacc/graph/graph.h"

#include <algorithm>

namespace resacc {
namespace {

// Merged CSR arrays of `graph` (base + overlay, or a plain copy), built
// through the public accessors so the result is the graph algorithms see.
struct MaterializedCsr {
  std::vector<EdgeId> out_offsets;
  std::vector<NodeId> out_targets;
  std::vector<EdgeId> in_offsets;
  std::vector<NodeId> in_sources;
};

MaterializedCsr Materialize(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  const std::size_t m = static_cast<std::size_t>(graph.num_edges());
  MaterializedCsr csr;
  csr.out_offsets.reserve(static_cast<std::size_t>(n) + 1);
  csr.out_targets.reserve(m);
  csr.in_offsets.reserve(static_cast<std::size_t>(n) + 1);
  csr.in_sources.reserve(m);
  csr.out_offsets.push_back(0);
  csr.in_offsets.push_back(0);
  for (NodeId u = 0; u < n; ++u) {
    const auto out = graph.OutNeighbors(u);
    csr.out_targets.insert(csr.out_targets.end(), out.begin(), out.end());
    csr.out_offsets.push_back(csr.out_targets.size());
    const auto in = graph.InNeighbors(u);
    csr.in_sources.insert(csr.in_sources.end(), in.begin(), in.end());
    csr.in_offsets.push_back(csr.in_sources.size());
  }
  return csr;
}

}  // namespace

Graph::Graph(NodeId num_nodes, std::vector<EdgeId> out_offsets,
             std::vector<NodeId> out_targets, std::vector<EdgeId> in_offsets,
             std::vector<NodeId> in_sources)
    : num_nodes_(num_nodes),
      num_edges_(static_cast<EdgeId>(out_targets.size())),
      owned_out_offsets_(std::move(out_offsets)),
      owned_out_targets_(std::move(out_targets)),
      owned_in_offsets_(std::move(in_offsets)),
      owned_in_sources_(std::move(in_sources)),
      out_offsets_(owned_out_offsets_),
      out_targets_(owned_out_targets_),
      in_offsets_(owned_in_offsets_),
      in_sources_(owned_in_sources_) {
  CheckInvariants();
}

Graph::Graph(NodeId num_nodes, std::span<const EdgeId> out_offsets,
             std::span<const NodeId> out_targets,
             std::span<const EdgeId> in_offsets,
             std::span<const NodeId> in_sources,
             std::shared_ptr<const void> storage)
    : num_nodes_(num_nodes),
      num_edges_(static_cast<EdgeId>(out_targets.size())),
      out_offsets_(out_offsets),
      out_targets_(out_targets),
      in_offsets_(in_offsets),
      in_sources_(in_sources),
      storage_(std::move(storage)) {
  RESACC_CHECK(storage_ != nullptr);
  CheckInvariants();
}

Graph::Graph(const Graph& base, std::shared_ptr<const DeltaOverlay> overlay,
             std::shared_ptr<const void> keep_alive)
    : num_nodes_(overlay->num_nodes),
      num_edges_(overlay->num_edges),
      out_offsets_(base.out_offsets_),
      out_targets_(base.out_targets_),
      in_offsets_(base.in_offsets_),
      in_sources_(base.in_sources_),
      storage_(std::move(keep_alive)),
      overlay_(std::move(overlay)) {
  // The base spans must describe exactly the graph the overlay was built
  // over; stacking an overlay on an overlay graph is not supported (the
  // MutableGraphView folds instead).
  RESACC_CHECK(base.overlay_ == nullptr);
  RESACC_CHECK(overlay_->base_num_nodes == base.num_nodes_);
  RESACC_CHECK(overlay_->num_nodes >= overlay_->base_num_nodes);
  RESACC_CHECK(storage_ != nullptr);
}

Graph::Graph(const Graph& other)
    : Graph([&other] {
        MaterializedCsr csr = Materialize(other);
        return Graph(other.num_nodes(), std::move(csr.out_offsets),
                     std::move(csr.out_targets), std::move(csr.in_offsets),
                     std::move(csr.in_sources));
      }()) {}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) *this = Graph(other);
  return *this;
}

Graph Graph::ShallowView(std::shared_ptr<const void> keep_alive) const {
  Graph view;
  view.num_nodes_ = num_nodes_;
  view.num_edges_ = num_edges_;
  view.out_offsets_ = out_offsets_;
  view.out_targets_ = out_targets_;
  view.in_offsets_ = in_offsets_;
  view.in_sources_ = in_sources_;
  view.storage_ = keep_alive != nullptr ? std::move(keep_alive) : storage_;
  view.overlay_ = overlay_;
  return view;
}

void Graph::CheckInvariants() const {
  RESACC_CHECK(out_offsets_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  RESACC_CHECK(in_offsets_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  RESACC_CHECK(out_offsets_.back() == out_targets_.size());
  RESACC_CHECK(in_offsets_.back() == in_sources_.size());
  RESACC_CHECK(out_targets_.size() == in_sources_.size());
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

NodeId Graph::MaxOutDegree() const {
  NodeId max_degree = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    max_degree = std::max(max_degree, OutDegree(u));
  }
  return max_degree;
}

std::vector<NodeId> Graph::NodesByOutDegreeDesc() const {
  std::vector<NodeId> nodes(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) nodes[u] = u;
  std::stable_sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    return OutDegree(a) > OutDegree(b);
  });
  return nodes;
}

std::size_t Graph::MemoryBytes() const {
  std::size_t bytes = out_offsets_.size() * sizeof(EdgeId) +
                      out_targets_.size() * sizeof(NodeId) +
                      in_offsets_.size() * sizeof(EdgeId) +
                      in_sources_.size() * sizeof(NodeId);
  if (overlay_ != nullptr) bytes += overlay_->MemoryBytes();
  return bytes;
}

}  // namespace resacc

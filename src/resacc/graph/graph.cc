#include "resacc/graph/graph.h"

#include <algorithm>

namespace resacc {

Graph::Graph(NodeId num_nodes, std::vector<EdgeId> out_offsets,
             std::vector<NodeId> out_targets, std::vector<EdgeId> in_offsets,
             std::vector<NodeId> in_sources)
    : num_nodes_(num_nodes),
      out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_sources_(std::move(in_sources)) {
  RESACC_CHECK(out_offsets_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  RESACC_CHECK(in_offsets_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  RESACC_CHECK(out_offsets_.back() == out_targets_.size());
  RESACC_CHECK(in_offsets_.back() == in_sources_.size());
  RESACC_CHECK(out_targets_.size() == in_sources_.size());
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

NodeId Graph::MaxOutDegree() const {
  NodeId max_degree = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    max_degree = std::max(max_degree, OutDegree(u));
  }
  return max_degree;
}

std::vector<NodeId> Graph::NodesByOutDegreeDesc() const {
  std::vector<NodeId> nodes(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) nodes[u] = u;
  std::stable_sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    return OutDegree(a) > OutDegree(b);
  });
  return nodes;
}

std::size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_targets_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_sources_.size() * sizeof(NodeId);
}

}  // namespace resacc

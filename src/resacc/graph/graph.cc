#include "resacc/graph/graph.h"

#include <algorithm>

namespace resacc {

Graph::Graph(NodeId num_nodes, std::vector<EdgeId> out_offsets,
             std::vector<NodeId> out_targets, std::vector<EdgeId> in_offsets,
             std::vector<NodeId> in_sources)
    : num_nodes_(num_nodes),
      owned_out_offsets_(std::move(out_offsets)),
      owned_out_targets_(std::move(out_targets)),
      owned_in_offsets_(std::move(in_offsets)),
      owned_in_sources_(std::move(in_sources)),
      out_offsets_(owned_out_offsets_),
      out_targets_(owned_out_targets_),
      in_offsets_(owned_in_offsets_),
      in_sources_(owned_in_sources_) {
  CheckInvariants();
}

Graph::Graph(NodeId num_nodes, std::span<const EdgeId> out_offsets,
             std::span<const NodeId> out_targets,
             std::span<const EdgeId> in_offsets,
             std::span<const NodeId> in_sources,
             std::shared_ptr<const void> storage)
    : num_nodes_(num_nodes),
      out_offsets_(out_offsets),
      out_targets_(out_targets),
      in_offsets_(in_offsets),
      in_sources_(in_sources),
      storage_(std::move(storage)) {
  RESACC_CHECK(storage_ != nullptr);
  CheckInvariants();
}

Graph::Graph(const Graph& other)
    : Graph(other.num_nodes_,
            std::vector<EdgeId>(other.out_offsets_.begin(),
                                other.out_offsets_.end()),
            std::vector<NodeId>(other.out_targets_.begin(),
                                other.out_targets_.end()),
            std::vector<EdgeId>(other.in_offsets_.begin(),
                                other.in_offsets_.end()),
            std::vector<NodeId>(other.in_sources_.begin(),
                                other.in_sources_.end())) {}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) *this = Graph(other);
  return *this;
}

void Graph::CheckInvariants() const {
  RESACC_CHECK(out_offsets_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  RESACC_CHECK(in_offsets_.size() == static_cast<std::size_t>(num_nodes_) + 1);
  RESACC_CHECK(out_offsets_.back() == out_targets_.size());
  RESACC_CHECK(in_offsets_.back() == in_sources_.size());
  RESACC_CHECK(out_targets_.size() == in_sources_.size());
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

NodeId Graph::MaxOutDegree() const {
  NodeId max_degree = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    max_degree = std::max(max_degree, OutDegree(u));
  }
  return max_degree;
}

std::vector<NodeId> Graph::NodesByOutDegreeDesc() const {
  std::vector<NodeId> nodes(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) nodes[u] = u;
  std::stable_sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    return OutDegree(a) > OutDegree(b);
  });
  return nodes;
}

std::size_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_targets_.size() * sizeof(NodeId) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_sources_.size() * sizeof(NodeId);
}

}  // namespace resacc

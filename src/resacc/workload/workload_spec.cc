#include "resacc/workload/workload_spec.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace resacc {
namespace {

const char* const kClassNames[kNumOpClasses] = {"full", "topk", "deadline",
                                                "degraded", "mutation"};

// Splits a line into whitespace-separated tokens, dropping everything from
// '#' on so specs can carry inline comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

Status LineError(const std::string& origin, int line, const std::string& msg) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "line %d: ", line);
  return Status::InvalidArgument(buf + msg + " (" + origin + ")");
}

bool ParsePositiveDouble(const std::string& token, double* out) {
  std::size_t pos = 0;
  double v;
  try {
    v = std::stod(token, &pos);
  } catch (...) {
    return false;
  }
  if (pos != token.size() || !(v > 0.0)) return false;
  *out = v;
  return true;
}

bool ParseNonNegativeDouble(const std::string& token, double* out) {
  std::size_t pos = 0;
  double v;
  try {
    v = std::stod(token, &pos);
  } catch (...) {
    return false;
  }
  if (pos != token.size() || !(v >= 0.0)) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

const char* OpClassName(OpClass cls) {
  return kClassNames[static_cast<std::size_t>(cls)];
}

bool ParseOpClass(const std::string& name, OpClass* out) {
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    if (name == kClassNames[i]) {
      *out = static_cast<OpClass>(i);
      return true;
    }
  }
  return false;
}

std::size_t WorkloadSpec::TenantIndex(const std::string& name) const {
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name == name) return i;
  }
  return tenants.size();
}

StatusOr<WorkloadSpec> WorkloadSpec::Parse(const std::string& text,
                                           const std::string& origin) {
  WorkloadSpec spec;
  // The tenant being filled between `tenant NAME` and `end`, if any.
  TenantSpec* open = nullptr;
  std::array<bool, kNumOpClasses> class_seen{};

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;
    const std::string& key = tok[0];

    if (open == nullptr) {
      // Top-level directives.
      if (key == "duration_seconds") {
        if (tok.size() != 2 ||
            !ParsePositiveDouble(tok[1], &spec.duration_seconds)) {
          return LineError(origin, lineno,
                           "duration_seconds needs one positive number");
        }
      } else if (key == "seed") {
        if (tok.size() != 2 || !ParseU64(tok[1], &spec.seed)) {
          return LineError(origin, lineno, "seed needs one unsigned integer");
        }
      } else if (key == "source") {
        if (tok.size() < 2) {
          return LineError(origin, lineno,
                           "source needs a picker: zipfian|uniform|hotset");
        }
        if (tok[1] == "zipfian") {
          spec.picker = SourcePickerKind::kZipfian;
          if (tok.size() == 3) {
            if (!ParseNonNegativeDouble(tok[2], &spec.zipf_theta)) {
              return LineError(origin, lineno,
                               "zipfian theta must be a number >= 0");
            }
          } else if (tok.size() != 2) {
            return LineError(origin, lineno, "source zipfian [theta]");
          }
        } else if (tok[1] == "uniform") {
          if (tok.size() != 2) {
            return LineError(origin, lineno, "source uniform takes no args");
          }
          spec.picker = SourcePickerKind::kUniform;
        } else if (tok[1] == "hotset") {
          spec.picker = SourcePickerKind::kHotset;
          if (tok.size() == 3) {
            if (!ParsePositiveDouble(tok[2], &spec.hotset_fraction) ||
                spec.hotset_fraction > 1.0) {
              return LineError(origin, lineno,
                               "hotset fraction must be in (0, 1]");
            }
          } else if (tok.size() != 2) {
            return LineError(origin, lineno, "source hotset [fraction]");
          }
        } else {
          return LineError(origin, lineno,
                           "unknown source picker '" + tok[1] + "'");
        }
      } else if (key == "top_k") {
        std::uint64_t k = 0;
        if (tok.size() != 2 || !ParseU64(tok[1], &k) || k == 0) {
          return LineError(origin, lineno, "top_k needs a positive integer");
        }
        spec.top_k = static_cast<std::size_t>(k);
      } else if (key == "deadline_ms") {
        if (tok.size() != 2 ||
            !ParsePositiveDouble(tok[1], &spec.deadline_ms)) {
          return LineError(origin, lineno,
                           "deadline_ms needs one positive number");
        }
      } else if (key == "tenant") {
        if (tok.size() != 2) {
          return LineError(origin, lineno, "tenant needs exactly one name");
        }
        if (tok[1] == "default") {
          return LineError(origin, lineno,
                           "tenant name 'default' is reserved");
        }
        if (spec.TenantIndex(tok[1]) != spec.tenants.size()) {
          return LineError(origin, lineno,
                           "duplicate tenant '" + tok[1] + "'");
        }
        spec.tenants.emplace_back();
        open = &spec.tenants.back();
        open->name = tok[1];
        class_seen.fill(false);
      } else if (key == "end") {
        return LineError(origin, lineno, "'end' outside a tenant block");
      } else {
        return LineError(origin, lineno, "unknown directive '" + key + "'");
      }
      continue;
    }

    // Inside a tenant block.
    if (key == "end") {
      if (tok.size() != 1) {
        return LineError(origin, lineno, "'end' takes no arguments");
      }
      double total = 0.0;
      for (double m : open->mix) total += m;
      if (!(total > 0.0)) {
        return LineError(origin, lineno, "tenant '" + open->name +
                                             "' has no class mix");
      }
      for (double& m : open->mix) m /= total;
      open = nullptr;
    } else if (key == "weight") {
      if (tok.size() != 2 || !ParsePositiveDouble(tok[1], &open->weight)) {
        return LineError(origin, lineno, "weight must be a number > 0");
      }
    } else if (key == "rate") {
      if (tok.size() != 2 || !ParseNonNegativeDouble(tok[1], &open->rate)) {
        return LineError(origin, lineno,
                         "rate must be a number >= 0 (0 = closed loop)");
      }
    } else if (key == "concurrency") {
      std::uint64_t c = 0;
      if (tok.size() != 2 || !ParseU64(tok[1], &c) || c == 0) {
        return LineError(origin, lineno,
                         "concurrency needs a positive integer");
      }
      open->concurrency = static_cast<std::size_t>(c);
    } else if (key == "class") {
      OpClass cls;
      if (tok.size() != 3 || !ParseOpClass(tok[1], &cls)) {
        return LineError(
            origin, lineno,
            "class needs <full|topk|deadline|degraded|mutation> <share>");
      }
      const std::size_t idx = static_cast<std::size_t>(cls);
      if (class_seen[idx]) {
        return LineError(origin, lineno,
                         "duplicate class '" + tok[1] + "'");
      }
      double share = 0.0;
      if (!ParsePositiveDouble(tok[2], &share)) {
        return LineError(origin, lineno, "class share must be > 0");
      }
      class_seen[idx] = true;
      open->mix[idx] = share;
    } else {
      return LineError(origin, lineno,
                       "unknown tenant directive '" + key + "'");
    }
  }

  if (open != nullptr) {
    return LineError(origin, lineno, "tenant '" + open->name +
                                         "' not closed with 'end'");
  }
  if (spec.tenants.empty()) {
    return LineError(origin, lineno > 0 ? lineno : 1,
                     "spec declares no tenants");
  }
  return spec;
}

StatusOr<WorkloadSpec> WorkloadSpec::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open workload spec: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), path);
}

}  // namespace resacc

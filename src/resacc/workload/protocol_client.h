#ifndef RESACC_WORKLOAD_PROTOCOL_CLIENT_H_
#define RESACC_WORKLOAD_PROTOCOL_CLIENT_H_

#include <cstdio>
#include <string>

#include <sys/types.h>

#include "resacc/util/status.h"
#include "resacc/util/types.h"
#include "resacc/workload/driver.h"
#include "resacc/workload/op_stream.h"

namespace resacc {

// The fields a workload client needs out of a resacc_serve response line;
// `raw` keeps the whole line for anything else.
struct ProtocolResponse {
  bool ok = false;
  bool hit = false;
  bool coalesced = false;
  bool degraded = false;
  bool stale = false;
  bool certified = false;
  // Non-OK classification (docs/QUERY_MODES.md outcomes): expiry and
  // backpressure are load-dependent behavior; anything else non-OK is a
  // genuine error.
  bool deadline_expired = false;
  bool rejected = false;
  std::size_t k = 0;              // topk responses
  double latency_seconds = 0.0;   // server-observed (us= field)
  std::string raw;
};

// Client side of the resacc_serve stdin/stdout line protocol: spawns the
// server under /bin/sh (POSIX fork/exec, like the rest of the tooling),
// performs the `info` handshake, and formats/parses protocol lines.
// Shared by loadgen --spec and bench_workload --serve so the two tools
// cannot drift on wire format. Not thread-safe; one client per pipe.
class ProtocolClient {
 public:
  ProtocolClient() = default;
  ~ProtocolClient();

  ProtocolClient(const ProtocolClient&) = delete;
  ProtocolClient& operator=(const ProtocolClient&) = delete;

  // Spawns `command` with our pipe as its stdin/stdout. kInternal on
  // fork/pipe failure.
  Status Spawn(const std::string& command);

  // Sends `info` and returns the server's node count. Also the liveness
  // check right after Spawn — a command that failed to exec surfaces here.
  StatusOr<NodeId> Handshake();

  // One protocol line for `op` (docs/WORKLOADS.md maps classes to verbs):
  //   kFull      query <src> <k> [tenant=T]
  //   kTopK      topk <src> <k> [tenant=T]
  //   kDeadline  query <src> <k> deadline_ms=<D> [tenant=T]
  //   kDegraded  query <src> <k> deadline_ms=<D> degraded=1 [tenant=T]
  //   kMutation  addedge <u> <v> | rmedge <u> <v>
  // `tenant` may be empty (no tenant token).
  static std::string FormatOp(const WorkloadOp& op,
                              const std::string& tenant);

  // Parses an ok/err response line (query, topk, or mutation shape).
  static ProtocolResponse ParseResponse(const std::string& line);

  // Raw line IO. SendLine appends the newline; Flush after a batch.
  void SendLine(const std::string& line);
  void Flush();
  bool ReadLine(std::string& out);

  // Sends `quit`, closes the pipes, reaps the child. Returns the child's
  // wait status (0 when it exited cleanly). Idempotent.
  int Shutdown();

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  FILE* to_server_ = nullptr;
  FILE* from_server_ = nullptr;
};

// Replays the spec as one deterministic merged stream (MergedOpStream)
// over an already-handshaken client with `window` ops pipelined, for
// spec.duration_seconds of wall time, and fills `report` with the same
// per-class/per-tenant accounting as the in-process driver (latencies are
// client-observed wall times; queue-wait/compute split is unavailable
// through the pipe). kInternal when the server closes mid-run. Used by
// bench_workload --serve-cmd and loadgen --spec.
Status RunProtocolWorkload(const WorkloadSpec& spec, ProtocolClient& client,
                           NodeId num_nodes, std::size_t window,
                           WorkloadReport* report);

}  // namespace resacc

#endif  // RESACC_WORKLOAD_PROTOCOL_CLIENT_H_

#include "resacc/workload/op_stream.h"

#include <algorithm>

#include "resacc/util/check.h"

namespace resacc {
namespace {

// Caps the mutation ledger; beyond this, new adds overwrite a random slot
// so removal targets stay a bounded, uniformly aged sample.
constexpr std::size_t kMaxPendingEdges = 4096;

}  // namespace

SourcePicker::SourcePicker(const WorkloadSpec& spec, NodeId num_nodes)
    : kind_(spec.picker),
      num_nodes_(num_nodes),
      zipf_(num_nodes, spec.picker == SourcePickerKind::kZipfian
                           ? spec.zipf_theta
                           : 0.0,
            spec.seed ^ 0x50C4711ULL) {
  RESACC_CHECK(num_nodes > 0);
  if (kind_ == SourcePickerKind::kHotset) {
    const double count = spec.hotset_fraction * static_cast<double>(num_nodes);
    hot_count_ = static_cast<NodeId>(count < 1.0 ? 1.0 : count);
    if (hot_count_ > num_nodes) hot_count_ = num_nodes;
    std::uint64_t sm = spec.seed ^ 0x407e5eedULL;
    hot_salt_ = SplitMix64(sm);
  }
}

NodeId SourcePicker::Next(Rng& rng) const {
  switch (kind_) {
    case SourcePickerKind::kZipfian:
      return zipf_.Next(rng);
    case SourcePickerKind::kUniform:
      return static_cast<NodeId>(rng.NextBounded(num_nodes_));
    case SourcePickerKind::kHotset: {
      // Pick a hot rank, then scramble it over the id space with a seeded
      // affine-ish hash so the hot set is not the low ids.
      const std::uint64_t rank = rng.NextBounded(hot_count_);
      std::uint64_t mixed = rank + hot_salt_;
      mixed = SplitMix64(mixed);
      return static_cast<NodeId>(mixed % num_nodes_);
    }
  }
  return 0;  // unreachable
}

TenantOpStream::TenantOpStream(const WorkloadSpec& spec,
                               std::size_t tenant_index, NodeId num_nodes)
    : name_(spec.tenants.at(tenant_index).name),
      tenant_index_(tenant_index),
      top_k_(spec.top_k),
      deadline_seconds_(spec.deadline_ms / 1e3),
      picker_(spec, num_nodes),
      rng_(Rng(spec.seed).Fork(0x7e4a47ULL + tenant_index)) {
  const TenantSpec& tenant = spec.tenants[tenant_index];
  double running = 0.0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    running += tenant.mix[i];
    cumulative_mix_[i] = running;
  }
  // Guard against normalization round-off: the last entry must cover 1.0.
  cumulative_mix_[kNumOpClasses - 1] = 1.0;
}

WorkloadOp TenantOpStream::Next() {
  WorkloadOp op;
  op.tenant = tenant_index_;
  const double draw = rng_.NextDouble();
  std::size_t idx = 0;
  while (idx + 1 < kNumOpClasses && draw >= cumulative_mix_[idx]) ++idx;
  op.cls = static_cast<OpClass>(idx);

  switch (op.cls) {
    case OpClass::kFull:
      op.source = picker_.Next(rng_);
      break;
    case OpClass::kTopK:
      op.source = picker_.Next(rng_);
      op.top_k = top_k_;
      break;
    case OpClass::kDeadline:
      op.source = picker_.Next(rng_);
      op.deadline_seconds = deadline_seconds_;
      break;
    case OpClass::kDegraded:
      op.source = picker_.Next(rng_);
      op.deadline_seconds = deadline_seconds_;
      op.allow_degraded = true;
      break;
    case OpClass::kMutation: {
      // Alternate between adding fresh edges and removing ones we added,
      // biased toward adds when the ledger is empty. The coin flip comes
      // first so the draw sequence is fixed regardless of ledger state...
      const bool want_remove = rng_.Bernoulli(0.5);
      if (want_remove && !pending_edges_.empty()) {
        const std::size_t slot = rng_.NextBounded(pending_edges_.size());
        op.remove = true;
        op.source = pending_edges_[slot].first;
        op.target = pending_edges_[slot].second;
        pending_edges_[slot] = pending_edges_.back();
        pending_edges_.pop_back();
      } else {
        // ...and the add path always burns exactly two picker draws plus
        // one bounded draw, keeping replay byte-stable.
        op.source = picker_.Next(rng_);
        op.target = picker_.Next(rng_);
        if (op.target == op.source) {
          op.target = (op.target + 1) % picker_.num_nodes();
        }
        if (pending_edges_.size() < kMaxPendingEdges) {
          pending_edges_.emplace_back(op.source, op.target);
        } else {
          pending_edges_[rng_.NextBounded(kMaxPendingEdges)] = {op.source,
                                                                op.target};
        }
      }
      break;
    }
  }
  return op;
}

MergedOpStream::MergedOpStream(const WorkloadSpec& spec, NodeId num_nodes) {
  RESACC_CHECK(!spec.tenants.empty());
  streams_.reserve(spec.tenants.size());
  for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
    streams_.emplace_back(spec, i, num_nodes);
    const TenantSpec& tenant = spec.tenants[i];
    const double share = tenant.rate > 0.0
                             ? tenant.rate
                             : static_cast<double>(tenant.concurrency);
    share_.push_back(share);
    virtual_time_.push_back(0.0);
  }
}

WorkloadOp MergedOpStream::Next() {
  // Earliest virtual deadline first; ties go to the lowest tenant index, so
  // the interleave is a deterministic function of the spec alone.
  std::size_t best = 0;
  for (std::size_t i = 1; i < streams_.size(); ++i) {
    if (virtual_time_[i] < virtual_time_[best]) best = i;
  }
  virtual_time_[best] += 1.0 / share_[best];
  return streams_[best].Next();
}

}  // namespace resacc

#ifndef RESACC_WORKLOAD_OP_STREAM_H_
#define RESACC_WORKLOAD_OP_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "resacc/serve/workload.h"
#include "resacc/util/rng.h"
#include "resacc/util/types.h"
#include "resacc/workload/workload_spec.h"

namespace resacc {

// One generated operation. The driver translates this into a QueryRequest
// (or a MutableGraphView edit) — the stream itself never talks to the
// server, which is what keeps generation deterministic: the op sequence is
// a pure function of (spec, seed, tenant), independent of server outcomes,
// thread scheduling, or wall clock.
struct WorkloadOp {
  OpClass cls = OpClass::kFull;
  std::size_t tenant = 0;  // index into WorkloadSpec::tenants
  NodeId source = 0;
  // Mutation fields (cls == kMutation).
  NodeId target = 0;
  bool remove = false;  // rmedge vs addedge
  // Query fields.
  std::size_t top_k = 0;           // kTopK
  double deadline_seconds = 0.0;   // kDeadline / kDegraded
  bool allow_degraded = false;     // kDegraded
};

// Draws query sources according to the spec's picker. Zipfian delegates to
// the serving layer's ZipfianSources; uniform and hotset are direct draws.
// Stateless between calls — all randomness comes from the caller's Rng.
class SourcePicker {
 public:
  SourcePicker(const WorkloadSpec& spec, NodeId num_nodes);

  NodeId Next(Rng& rng) const;
  NodeId num_nodes() const { return num_nodes_; }

 private:
  SourcePickerKind kind_;
  NodeId num_nodes_;
  NodeId hot_count_ = 0;          // kHotset
  std::uint64_t hot_salt_ = 0;    // kHotset: seeded id scramble
  ZipfianSources zipf_;           // kZipfian (always built; cheap for others)
};

// The deterministic op generator for one tenant. Its Rng is forked from
// (spec.seed, tenant index), so two streams for the same tenant produce
// byte-identical op sequences regardless of what any other tenant — or the
// server — is doing. Mutation churn keeps a stream-local ledger of edges
// it has added so rmedge ops target plausible edges without ever consulting
// the server.
class TenantOpStream {
 public:
  TenantOpStream(const WorkloadSpec& spec, std::size_t tenant_index,
                 NodeId num_nodes);

  // Generates the next op. Never fails; infinite stream.
  WorkloadOp Next();

  const std::string& tenant_name() const { return name_; }

 private:
  std::string name_;
  std::size_t tenant_index_;
  std::array<double, kNumOpClasses> cumulative_mix_{};
  std::size_t top_k_;
  double deadline_seconds_;
  SourcePicker picker_;
  Rng rng_;
  // Edges this stream "believes" it has added and not yet removed. Bounded
  // so a mutation-heavy tenant doesn't grow without limit.
  std::vector<std::pair<NodeId, NodeId>> pending_edges_;
};

// Interleaves all tenants' streams into one deterministic total order,
// weighted by each tenant's offered load (rate for open-loop tenants,
// concurrency for closed-loop ones). Used by single-threaded drivers
// (loadgen --spec, protocol mode) where ops flow down one connection; the
// in-process driver instead runs one TenantOpStream per tenant thread.
class MergedOpStream {
 public:
  MergedOpStream(const WorkloadSpec& spec, NodeId num_nodes);

  WorkloadOp Next();

 private:
  std::vector<TenantOpStream> streams_;
  std::vector<double> share_;         // ops per virtual second
  std::vector<double> virtual_time_;  // next-op time per tenant
};

}  // namespace resacc

#endif  // RESACC_WORKLOAD_OP_STREAM_H_

#ifndef RESACC_WORKLOAD_DRIVER_H_
#define RESACC_WORKLOAD_DRIVER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/serve/query_service.h"
#include "resacc/util/histogram.h"
#include "resacc/util/status.h"
#include "resacc/workload/op_stream.h"
#include "resacc/workload/workload_spec.h"

namespace resacc {

// Outcome tallies for one (tenant, class) cell — or a per-class aggregate
// across tenants. Counts partition `sent`; the flag counts (degraded,
// stale, cache_hits, certified) annotate the `ok` subset.
struct OpStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;           // kResourceExhausted (backpressure)
  std::uint64_t deadline_exceeded = 0;  // kDeadlineExceeded
  std::uint64_t errors = 0;             // anything else non-OK
  std::uint64_t degraded = 0;
  std::uint64_t stale = 0;
  std::uint64_t cache_hits = 0;
  // Top-k responses whose payload covers the requested k (certified
  // prefix or the documented wider certified set).
  std::uint64_t certified = 0;
  LatencyHistogram::Snapshot latency;
};

// What one driver run measured. ToJson renders the BENCH_workload.json
// document; CheckBounds (below) gates it against a committed baseline.
struct WorkloadReport {
  std::string spec_origin;
  double wall_seconds = 0.0;
  std::uint64_t seed = 0;
  std::vector<std::string> tenant_names;
  // [tenant][class] cells and per-class aggregates across tenants.
  std::vector<std::array<OpStats, kNumOpClasses>> tenants;
  std::array<OpStats, kNumOpClasses> classes;
  // Per tenant: OK query completions that actually consumed a worker
  // (excludes cache hits and coalesced followers, which bypass the fair
  // queue) — the number weighted-fair-queueing shares are measured on.
  std::vector<std::uint64_t> computed_ok;

  std::string ToJson() const;

  // Aggregate convenience counts over `classes`.
  std::uint64_t TotalSent() const;
  std::uint64_t TotalOk() const;
  std::uint64_t TotalErrors() const;  // errors only; not rejected/deadline
};

// Gates a report against the line-oriented bounds format of
// bench/workload/baseline.bounds (docs/WORKLOADS.md "Updating the
// baseline"):
//   max_error_rate <v>                   errors / sent, over all ops
//   min_ok_total <n>
//   min_ok_per_tenant <n>
//   min_qps <v>                          TotalOk / wall_seconds
//   max_p99_ms <class> <v>               per-class aggregate p99
//   max_p999_ms <class> <v>
//   min_certified_rate <v>               certified / ok over topk class
//   min_fairness_ratio <heavy> <light> <v>   computed_ok ratio of the two
// Unknown keys and malformed lines are kInvalidArgument ("line N: ...").
// Violations are collected — the status message lists every failed bound,
// not just the first.
Status CheckBounds(const WorkloadReport& report, const std::string& text,
                   const std::string& origin = "<bounds>");
Status CheckBoundsFile(const WorkloadReport& report, const std::string& path);

// Multi-tenant closed+open-loop driver over an in-process QueryService.
// One thread per tenant: open-loop tenants (rate > 0) pace submissions on
// the wall clock and park futures; closed-loop tenants keep `concurrency`
// ops in flight. Mutation ops go through the MutableGraphView (when one
// is provided) and re-point the service at the fresh snapshot, exactly as
// resacc_serve's mutation verbs do; without a view they are skipped and
// counted as errors=0/sent=0 so query-only harnesses can run the same
// spec.
class WorkloadDriver {
 public:
  // `service` must outlive the driver. `view` may be null (no mutations)
  // but must be the view whose snapshots `service` serves when given.
  WorkloadDriver(const WorkloadSpec& spec, QueryService* service,
                 MutableGraphView* view);

  // Runs the spec to completion (duration_seconds of wall time, then
  // drains in-flight ops) and returns the measurements. Call once.
  WorkloadReport Run();

 private:
  // Per-(tenant, class) accumulation. Counts are only written by the
  // owning tenant's thread; the histogram is internally atomic.
  struct Cell {
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t errors = 0;
    std::uint64_t degraded = 0;
    std::uint64_t stale = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t certified = 0;
    LatencyHistogram latency;
  };

  void TenantLoop(std::size_t tenant_index);
  void RecordResponse(std::size_t tenant_index, const WorkloadOp& op,
                      const QueryResponse& response);
  void ApplyMutation(std::size_t tenant_index, const WorkloadOp& op);

  const WorkloadSpec spec_;
  QueryService* const service_;
  MutableGraphView* const view_;
  NodeId num_nodes_;

  // [tenant][class]; unique_ptr array because Cell's histogram holds
  // atomics and cannot be moved, which std::vector would require.
  std::unique_ptr<std::array<Cell, kNumOpClasses>[]> cells_;
  // Class aggregates are shared across tenant threads; LatencyHistogram
  // records are atomic, counters are summed from cells at the end.
  std::array<LatencyHistogram, kNumOpClasses> class_latency_;
  std::vector<std::uint64_t> computed_ok_;  // per tenant
};

}  // namespace resacc

#endif  // RESACC_WORKLOAD_DRIVER_H_

#include "resacc/workload/driver.h"

#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "resacc/util/check.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

using Clock = std::chrono::steady_clock;

std::string JsonStats(const OpStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"sent\":%llu,\"ok\":%llu,\"rejected\":%llu,"
      "\"deadline_exceeded\":%llu,\"errors\":%llu,\"degraded\":%llu,"
      "\"stale\":%llu,\"cache_hits\":%llu,\"certified\":%llu,"
      "\"mean_ms\":%.4f,\"p50_ms\":%.4f,\"p99_ms\":%.4f,\"p999_ms\":%.4f,"
      "\"max_ms\":%.4f}",
      static_cast<unsigned long long>(s.sent),
      static_cast<unsigned long long>(s.ok),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.degraded),
      static_cast<unsigned long long>(s.stale),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.certified), s.latency.mean * 1e3,
      s.latency.p50 * 1e3, s.latency.p99 * 1e3, s.latency.p999 * 1e3,
      s.latency.max * 1e3);
  return buf;
}

}  // namespace

std::uint64_t WorkloadReport::TotalSent() const {
  std::uint64_t n = 0;
  for (const OpStats& s : classes) n += s.sent;
  return n;
}

std::uint64_t WorkloadReport::TotalOk() const {
  std::uint64_t n = 0;
  for (const OpStats& s : classes) n += s.ok;
  return n;
}

std::uint64_t WorkloadReport::TotalErrors() const {
  std::uint64_t n = 0;
  for (const OpStats& s : classes) n += s.errors;
  return n;
}

std::string WorkloadReport::ToJson() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"spec\": \"%s\",\n  \"wall_seconds\": %.3f,\n"
                "  \"seed\": %llu,\n",
                spec_origin.c_str(), wall_seconds,
                static_cast<unsigned long long>(seed));
  out << buf;
  const double qps =
      wall_seconds > 0.0 ? static_cast<double>(TotalOk()) / wall_seconds : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  \"totals\": {\"sent\": %llu, \"ok\": %llu, "
                "\"errors\": %llu, \"qps\": %.1f},\n",
                static_cast<unsigned long long>(TotalSent()),
                static_cast<unsigned long long>(TotalOk()),
                static_cast<unsigned long long>(TotalErrors()), qps);
  out << buf;

  out << "  \"classes\": {\n";
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    out << "    \"" << OpClassName(static_cast<OpClass>(c))
        << "\": " << JsonStats(classes[c])
        << (c + 1 < kNumOpClasses ? ",\n" : "\n");
  }
  out << "  },\n  \"tenants\": {\n";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    out << "    \"" << tenant_names[t] << "\": {\"computed_ok\": "
        << computed_ok[t] << ", \"classes\": {\n";
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      out << "      \"" << OpClassName(static_cast<OpClass>(c))
          << "\": " << JsonStats(tenants[t][c])
          << (c + 1 < kNumOpClasses ? ",\n" : "\n");
    }
    out << "    }}" << (t + 1 < tenants.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  return out.str();
}

Status CheckBounds(const WorkloadReport& report, const std::string& text,
                   const std::string& origin) {
  std::vector<std::string> violations;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  auto class_stats = [&report](const std::string& name,
                               const OpStats** out) -> bool {
    OpClass cls;
    if (!ParseOpClass(name, &cls)) return false;
    *out = &report.classes[static_cast<std::size_t>(cls)];
    return true;
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tok_in(line);
    std::vector<std::string> tok;
    std::string word;
    while (tok_in >> word) {
      if (word[0] == '#') break;
      tok.push_back(word);
    }
    if (tok.empty()) continue;
    char msg[256];

    auto bad_line = [&](const char* what) {
      std::snprintf(msg, sizeof(msg), "line %d: %s (%s)", lineno, what,
                    origin.c_str());
      return Status::InvalidArgument(msg);
    };

    if (tok[0] == "max_error_rate" && tok.size() == 2) {
      const double bound = std::atof(tok[1].c_str());
      const double sent = static_cast<double>(report.TotalSent());
      const double rate =
          sent > 0.0 ? static_cast<double>(report.TotalErrors()) / sent : 0.0;
      if (rate > bound) {
        std::snprintf(msg, sizeof(msg), "error rate %.4f > %.4f", rate, bound);
        violations.push_back(msg);
      }
    } else if (tok[0] == "min_ok_total" && tok.size() == 2) {
      const std::uint64_t bound =
          static_cast<std::uint64_t>(std::atoll(tok[1].c_str()));
      if (report.TotalOk() < bound) {
        std::snprintf(msg, sizeof(msg), "ok total %llu < %llu",
                      static_cast<unsigned long long>(report.TotalOk()),
                      static_cast<unsigned long long>(bound));
        violations.push_back(msg);
      }
    } else if (tok[0] == "min_ok_per_tenant" && tok.size() == 2) {
      const std::uint64_t bound =
          static_cast<std::uint64_t>(std::atoll(tok[1].c_str()));
      for (std::size_t t = 0; t < report.tenants.size(); ++t) {
        std::uint64_t ok = 0;
        for (const OpStats& s : report.tenants[t]) ok += s.ok;
        if (ok < bound) {
          std::snprintf(msg, sizeof(msg), "tenant %s ok %llu < %llu",
                        report.tenant_names[t].c_str(),
                        static_cast<unsigned long long>(ok),
                        static_cast<unsigned long long>(bound));
          violations.push_back(msg);
        }
      }
    } else if (tok[0] == "min_qps" && tok.size() == 2) {
      const double bound = std::atof(tok[1].c_str());
      const double qps = report.wall_seconds > 0.0
                             ? static_cast<double>(report.TotalOk()) /
                                   report.wall_seconds
                             : 0.0;
      if (qps < bound) {
        std::snprintf(msg, sizeof(msg), "qps %.1f < %.1f", qps, bound);
        violations.push_back(msg);
      }
    } else if ((tok[0] == "max_p99_ms" || tok[0] == "max_p999_ms") &&
               tok.size() == 3) {
      const OpStats* stats = nullptr;
      if (!class_stats(tok[1], &stats)) return bad_line("unknown class");
      const double bound = std::atof(tok[2].c_str());
      const bool p999 = tok[0] == "max_p999_ms";
      const double value =
          (p999 ? stats->latency.p999 : stats->latency.p99) * 1e3;
      if (stats->ok > 0 && value > bound) {
        std::snprintf(msg, sizeof(msg), "%s %s %.3fms > %.3fms",
                      tok[1].c_str(), p999 ? "p999" : "p99", value, bound);
        violations.push_back(msg);
      }
    } else if (tok[0] == "min_certified_rate" && tok.size() == 2) {
      const double bound = std::atof(tok[1].c_str());
      const OpStats& tk =
          report.classes[static_cast<std::size_t>(OpClass::kTopK)];
      if (tk.ok == 0) {
        if (bound > 0.0) violations.push_back("no top-k completions");
      } else {
        const double rate = static_cast<double>(tk.certified) /
                            static_cast<double>(tk.ok);
        if (rate < bound) {
          std::snprintf(msg, sizeof(msg), "certified rate %.4f < %.4f", rate,
                        bound);
          violations.push_back(msg);
        }
      }
    } else if (tok[0] == "min_fairness_ratio" && tok.size() == 4) {
      std::size_t heavy = report.tenants.size();
      std::size_t light = report.tenants.size();
      for (std::size_t t = 0; t < report.tenant_names.size(); ++t) {
        if (report.tenant_names[t] == tok[1]) heavy = t;
        if (report.tenant_names[t] == tok[2]) light = t;
      }
      if (heavy >= report.tenants.size() || light >= report.tenants.size()) {
        return bad_line("unknown tenant in min_fairness_ratio");
      }
      const double bound = std::atof(tok[3].c_str());
      const double h = static_cast<double>(report.computed_ok[heavy]);
      const double l = static_cast<double>(report.computed_ok[light]);
      const double ratio = l > 0.0 ? h / l : (h > 0.0 ? 1e9 : 0.0);
      if (ratio < bound) {
        std::snprintf(msg, sizeof(msg),
                      "fairness %s/%s = %.0f/%.0f = %.2f < %.2f",
                      tok[1].c_str(), tok[2].c_str(), h, l, ratio, bound);
        violations.push_back(msg);
      }
    } else {
      return bad_line("unknown or malformed bound");
    }
  }

  if (violations.empty()) return Status::Ok();
  std::string all = "bounds check failed (" + origin + "):";
  for (const std::string& v : violations) all += "\n  " + v;
  return Status::FailedPrecondition(all);
}

Status CheckBoundsFile(const WorkloadReport& report, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open bounds file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CheckBounds(report, buffer.str(), path);
}

WorkloadDriver::WorkloadDriver(const WorkloadSpec& spec, QueryService* service,
                               MutableGraphView* view)
    : spec_(spec), service_(service), view_(view) {
  RESACC_CHECK(service_ != nullptr);
  RESACC_CHECK(!spec_.tenants.empty());
  num_nodes_ = service_->graph().num_nodes();
  cells_ = std::make_unique<std::array<Cell, kNumOpClasses>[]>(
      spec_.tenants.size());
  computed_ok_.assign(spec_.tenants.size(), 0);
}

void WorkloadDriver::RecordResponse(std::size_t tenant_index,
                                    const WorkloadOp& op,
                                    const QueryResponse& response) {
  Cell& cell = cells_[tenant_index][static_cast<std::size_t>(op.cls)];
  if (response.status.ok()) {
    ++cell.ok;
    if (response.degraded) ++cell.degraded;
    if (response.stale) ++cell.stale;
    if (response.cache_hit) ++cell.cache_hits;
    if (op.cls == OpClass::kTopK && response.topk != nullptr &&
        response.top.size() >= op.top_k) {
      ++cell.certified;
    }
    cell.latency.Record(response.latency_seconds);
    class_latency_[static_cast<std::size_t>(op.cls)].Record(
        response.latency_seconds);
    if (!response.cache_hit && !response.coalesced) {
      ++computed_ok_[tenant_index];
    }
  } else if (response.status.code() == StatusCode::kResourceExhausted) {
    ++cell.rejected;
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    ++cell.deadline_exceeded;
  } else {
    ++cell.errors;
  }
}

void WorkloadDriver::ApplyMutation(std::size_t tenant_index,
                                   const WorkloadOp& op) {
  if (view_ == nullptr) return;  // query-only harness: mutations skipped
  Cell& cell =
      cells_[tenant_index][static_cast<std::size_t>(OpClass::kMutation)];
  ++cell.sent;
  Timer timer;
  GraphDelta delta;
  const Status status =
      op.remove ? view_->RemoveEdge(op.source, op.target, &delta)
                : view_->AddEdge(op.source, op.target, &delta);
  if (status.ok()) {
    service_->UpdateGraph(view_->Snapshot(), delta);
  } else if (status.code() != StatusCode::kAlreadyExists &&
             status.code() != StatusCode::kNotFound) {
    // Validated no-ops (duplicate add against a pre-existing edge, remove
    // of an edge another tenant already took) are fine; anything else is a
    // real failure.
    ++cell.errors;
    return;
  }
  const double seconds = timer.ElapsedSeconds();
  ++cell.ok;
  cell.latency.Record(seconds);
  class_latency_[static_cast<std::size_t>(OpClass::kMutation)].Record(seconds);
}

void WorkloadDriver::TenantLoop(std::size_t tenant_index) {
  const TenantSpec& tenant = spec_.tenants[tenant_index];
  TenantOpStream stream(spec_, tenant_index, num_nodes_);

  const auto start = Clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(spec_.duration_seconds));

  struct Pending {
    WorkloadOp op;
    std::future<QueryResponse> future;
  };
  std::deque<Pending> pending;

  auto settle_front = [&] {
    Pending& front = pending.front();
    RecordResponse(tenant_index, front.op, front.future.get());
    pending.pop_front();
  };

  auto issue = [&](WorkloadOp op) {
    if (op.cls == OpClass::kMutation) {
      ApplyMutation(tenant_index, op);
      return;
    }
    Cell& cell = cells_[tenant_index][static_cast<std::size_t>(op.cls)];
    ++cell.sent;
    QueryRequest request;
    request.source = op.source;
    request.top_k = op.top_k;
    request.deadline_seconds = op.deadline_seconds;
    request.allow_degraded = op.allow_degraded;
    request.tenant = tenant.name;
    pending.push_back(Pending{op, service_->Submit(request)});
  };

  if (tenant.rate > 0.0) {
    // Open loop: arrivals on the wall clock at `rate` ops/s regardless of
    // completions; futures park in `pending` and drain opportunistically.
    for (std::uint64_t n = 0;; ++n) {
      const auto target =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(n) / tenant.rate));
      if (target >= stop_at) break;
      std::this_thread::sleep_until(target);
      issue(stream.Next());
      while (!pending.empty() &&
             pending.front().future.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready) {
        settle_front();
      }
    }
  } else {
    // Closed loop: `concurrency` virtual clients, each issuing its next op
    // as soon as one completes.
    while (Clock::now() < stop_at) {
      issue(stream.Next());
      while (pending.size() >= tenant.concurrency) settle_front();
    }
  }
  while (!pending.empty()) settle_front();
}

WorkloadReport WorkloadDriver::Run() {
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(spec_.tenants.size());
  for (std::size_t i = 0; i < spec_.tenants.size(); ++i) {
    threads.emplace_back([this, i] { TenantLoop(i); });
  }
  for (std::thread& t : threads) t.join();

  WorkloadReport report;
  report.spec_origin = "";
  report.wall_seconds = wall.ElapsedSeconds();
  report.seed = spec_.seed;
  report.tenants.resize(spec_.tenants.size());
  report.computed_ok = computed_ok_;
  for (std::size_t t = 0; t < spec_.tenants.size(); ++t) {
    report.tenant_names.push_back(spec_.tenants[t].name);
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      const Cell& cell = cells_[t][c];
      OpStats& s = report.tenants[t][c];
      s.sent = cell.sent;
      s.ok = cell.ok;
      s.rejected = cell.rejected;
      s.deadline_exceeded = cell.deadline_exceeded;
      s.errors = cell.errors;
      s.degraded = cell.degraded;
      s.stale = cell.stale;
      s.cache_hits = cell.cache_hits;
      s.certified = cell.certified;
      s.latency = cell.latency.TakeSnapshot();

      OpStats& agg = report.classes[c];
      agg.sent += cell.sent;
      agg.ok += cell.ok;
      agg.rejected += cell.rejected;
      agg.deadline_exceeded += cell.deadline_exceeded;
      agg.errors += cell.errors;
      agg.degraded += cell.degraded;
      agg.stale += cell.stale;
      agg.cache_hits += cell.cache_hits;
      agg.certified += cell.certified;
    }
  }
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    report.classes[c].latency = class_latency_[c].TakeSnapshot();
  }
  return report;
}

}  // namespace resacc

#ifndef RESACC_WORKLOAD_WORKLOAD_SPEC_H_
#define RESACC_WORKLOAD_WORKLOAD_SPEC_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "resacc/util/status.h"

namespace resacc {

// The five operation classes a production RWR workload mixes
// (docs/WORKLOADS.md). The first four map onto the query modes of
// docs/QUERY_MODES.md; kMutation is a graph write (addedge/rmedge churn)
// riding the same stream, per the dynamic-RWR serving setting.
enum class OpClass : std::uint8_t {
  kFull = 0,      // full score-vector query
  kTopK,          // top-k query with bound certificates
  kDeadline,      // full query with a hard deadline (may expire)
  kDegraded,      // deadline + allow_degraded (partial results accepted)
  kMutation,      // addedge/rmedge churn
};
inline constexpr std::size_t kNumOpClasses = 5;

// Lower-case class names, in enum order: "full", "topk", "deadline",
// "degraded", "mutation". Used by the spec format, metric labels, and
// BENCH_workload.json keys.
const char* OpClassName(OpClass cls);
// Reverse lookup; false when `name` is not a class.
bool ParseOpClass(const std::string& name, OpClass* out);

// How query sources are drawn from the node id space.
enum class SourcePickerKind : std::uint8_t {
  kZipfian,  // rank r with P ~ 1/r^theta over a seeded shuffle (YCSB-style)
  kUniform,  // uniform over all nodes
  kHotset,   // uniform over a seeded hot fraction of the nodes
};

// One tenant stream: its QoS weight, arrival model, and class mix.
struct TenantSpec {
  std::string name;
  // Weighted-fair-queueing weight (ServeOptions::tenant_weights).
  double weight = 1.0;
  // Open-loop arrival rate in ops/second; 0 selects the closed loop.
  double rate = 0.0;
  // Closed-loop virtual clients (outstanding ops) when rate == 0.
  std::size_t concurrency = 1;
  // Relative class mix, indexed by OpClass; normalized at parse (the spec
  // may write any positive weights). Classes not mentioned are 0.
  std::array<double, kNumOpClasses> mix{};
};

// Declarative LinkBench-style workload: duration, source skew, and N
// tenant streams. Parsed from the small line-oriented text format
// documented in docs/WORKLOADS.md ("Spec format"); parsing is
// all-or-nothing — an invalid spec yields a line-numbered error and no
// WorkloadSpec at all, never a partially-applied one.
struct WorkloadSpec {
  double duration_seconds = 10.0;
  std::uint64_t seed = 42;

  SourcePickerKind picker = SourcePickerKind::kZipfian;
  double zipf_theta = 0.99;       // kZipfian
  double hotset_fraction = 0.01;  // kHotset

  // Defaults the op classes draw from (per-tenant overrides TBD — the
  // format reserves `top_k`/`deadline_ms` inside tenant blocks).
  std::size_t top_k = 10;
  double deadline_ms = 50.0;

  std::vector<TenantSpec> tenants;

  // Parses the text format. On error: kInvalidArgument whose message
  // starts with "line N: ". `origin` names the source in errors (a file
  // path; defaults to "<spec>").
  static StatusOr<WorkloadSpec> Parse(const std::string& text,
                                      const std::string& origin = "<spec>");
  // Reads `path` and parses it. kNotFound when unreadable.
  static StatusOr<WorkloadSpec> ParseFile(const std::string& path);

  // The tenant index, or tenants.size() when absent.
  std::size_t TenantIndex(const std::string& name) const;
};

}  // namespace resacc

#endif  // RESACC_WORKLOAD_WORKLOAD_SPEC_H_

#include "resacc/workload/protocol_client.h"

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <deque>
#include <vector>

#include "resacc/util/histogram.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

// "key=value" integer lookup inside a response line; `fallback` when the
// key is absent.
double FindValue(const std::string& line, const char* key, double fallback) {
  const char* hit = std::strstr(line.c_str(), key);
  if (hit == nullptr) return fallback;
  return std::atof(hit + std::strlen(key));
}

}  // namespace

ProtocolClient::~ProtocolClient() { Shutdown(); }

Status ProtocolClient::Spawn(const std::string& command) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    return Status::Internal("pipe() failed");
  }
  pid_ = fork();
  if (pid_ < 0) return Status::Internal("fork() failed");
  if (pid_ == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  to_server_ = fdopen(to_child[1], "w");
  from_server_ = fdopen(from_child[0], "r");
  if (to_server_ == nullptr || from_server_ == nullptr) {
    return Status::Internal("fdopen() failed");
  }
  return Status::Ok();
}

StatusOr<NodeId> ProtocolClient::Handshake() {
  SendLine("info");
  Flush();
  std::string line;
  unsigned long nodes = 0;
  if (!ReadLine(line) ||
      std::sscanf(line.c_str(), "info nodes=%lu", &nodes) != 1 || nodes == 0) {
    return Status::Internal("bad handshake: '" + line + "'");
  }
  return static_cast<NodeId>(nodes);
}

std::string ProtocolClient::FormatOp(const WorkloadOp& op,
                                     const std::string& tenant) {
  char buf[160];
  switch (op.cls) {
    case OpClass::kMutation:
      std::snprintf(buf, sizeof(buf), "%s %u %u",
                    op.remove ? "rmedge" : "addedge", op.source, op.target);
      return buf;
    case OpClass::kTopK:
      std::snprintf(buf, sizeof(buf), "topk %u %zu", op.source,
                    op.top_k > 0 ? op.top_k : std::size_t{10});
      break;
    case OpClass::kFull:
      std::snprintf(buf, sizeof(buf), "query %u 10", op.source);
      break;
    case OpClass::kDeadline:
      std::snprintf(buf, sizeof(buf), "query %u 10 deadline_ms=%.3f",
                    op.source, op.deadline_seconds * 1e3);
      break;
    case OpClass::kDegraded:
      std::snprintf(buf, sizeof(buf),
                    "query %u 10 deadline_ms=%.3f degraded=1", op.source,
                    op.deadline_seconds * 1e3);
      break;
  }
  std::string line = buf;
  if (!tenant.empty()) line += " tenant=" + tenant;
  return line;
}

ProtocolResponse ProtocolClient::ParseResponse(const std::string& line) {
  ProtocolResponse response;
  response.raw = line;
  response.ok = line.rfind("ok ", 0) == 0;
  if (!response.ok) {
    // Classify the documented non-OK outcomes so replay accounting
    // matches the in-process driver: expiry and backpressure are
    // expected load-dependent behavior, not errors.
    response.deadline_expired =
        line.find("DEADLINE_EXCEEDED") != std::string::npos;
    response.rejected =
        line.find("RESOURCE_EXHAUSTED") != std::string::npos;
    return response;
  }
  response.hit = FindValue(line, "hit=", 0.0) > 0.5;
  response.coalesced = FindValue(line, "coalesced=", 0.0) > 0.5;
  response.degraded = FindValue(line, "degraded=", 0.0) > 0.5;
  response.stale = FindValue(line, "stale=", 0.0) > 0.5;
  response.certified = FindValue(line, "certified=", 0.0) > 0.5;
  response.k = static_cast<std::size_t>(FindValue(line, "k=", 0.0));
  response.latency_seconds = FindValue(line, "us=", 0.0) / 1e6;
  return response;
}

void ProtocolClient::SendLine(const std::string& line) {
  std::fprintf(to_server_, "%s\n", line.c_str());
}

void ProtocolClient::Flush() { std::fflush(to_server_); }

bool ProtocolClient::ReadLine(std::string& out) {
  char buf[4096];
  if (std::fgets(buf, sizeof(buf), from_server_) == nullptr) return false;
  out.assign(buf);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return true;
}

int ProtocolClient::Shutdown() {
  if (pid_ < 0) return 0;
  if (to_server_ != nullptr) {
    std::fprintf(to_server_, "quit\n");
    std::fflush(to_server_);
    fclose(to_server_);
    to_server_ = nullptr;
  }
  if (from_server_ != nullptr) {
    // Drain whatever the server still writes (at least `bye`) so it never
    // blocks on a full pipe while exiting.
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), from_server_) != nullptr) {
    }
    fclose(from_server_);
    from_server_ = nullptr;
  }
  int wstatus = 0;
  waitpid(pid_, &wstatus, 0);
  pid_ = -1;
  return wstatus;
}

Status RunProtocolWorkload(const WorkloadSpec& spec, ProtocolClient& client,
                           NodeId num_nodes, std::size_t window,
                           WorkloadReport* report) {
  MergedOpStream stream(spec, num_nodes);
  if (window == 0) window = 1;

  struct Cell {
    std::uint64_t sent = 0, ok = 0, errors = 0, rejected = 0,
                  deadline_exceeded = 0, degraded = 0, stale = 0,
                  cache_hits = 0, certified = 0;
    LatencyHistogram latency;
  };
  // deque, not vector: Cell's histogram holds atomics and cannot move.
  std::deque<std::array<Cell, kNumOpClasses>> cells(spec.tenants.size());
  std::array<LatencyHistogram, kNumOpClasses> class_latency;
  std::vector<std::uint64_t> computed_ok(spec.tenants.size(), 0);

  struct InFlight {
    WorkloadOp op;
    Timer timer;
  };
  std::deque<InFlight> in_flight;
  std::string line;

  auto settle_front = [&]() -> bool {
    if (!client.ReadLine(line)) return false;
    const InFlight& sent_op = in_flight.front();
    const ProtocolResponse resp = ProtocolClient::ParseResponse(line);
    const std::size_t c = static_cast<std::size_t>(sent_op.op.cls);
    Cell& cell = cells[sent_op.op.tenant][c];
    if (resp.ok) {
      ++cell.ok;
      if (resp.degraded) ++cell.degraded;
      if (resp.stale) ++cell.stale;
      if (resp.hit) ++cell.cache_hits;
      if (sent_op.op.cls == OpClass::kTopK && resp.k >= sent_op.op.top_k) {
        ++cell.certified;
      }
      // Client-observed wall latency; the us= field would miss pipe time.
      const double seconds = sent_op.timer.ElapsedSeconds();
      cell.latency.Record(seconds);
      class_latency[c].Record(seconds);
      if (!resp.hit && !resp.coalesced &&
          sent_op.op.cls != OpClass::kMutation) {
        ++computed_ok[sent_op.op.tenant];
      }
    } else if (resp.deadline_expired) {
      ++cell.deadline_exceeded;
    } else if (resp.rejected) {
      ++cell.rejected;
    } else {
      ++cell.errors;
    }
    in_flight.pop_front();
    return true;
  };

  Timer wall;
  while (wall.ElapsedSeconds() < spec.duration_seconds) {
    while (in_flight.size() < window) {
      WorkloadOp op = stream.Next();
      client.SendLine(
          ProtocolClient::FormatOp(op, spec.tenants[op.tenant].name));
      ++cells[op.tenant][static_cast<std::size_t>(op.cls)].sent;
      in_flight.push_back(InFlight{op, Timer()});
    }
    client.Flush();
    if (!settle_front()) {
      return Status::Internal("server closed mid-run");
    }
  }
  client.Flush();
  while (!in_flight.empty()) {
    if (!settle_front()) {
      return Status::Internal("server closed during drain");
    }
  }
  report->wall_seconds = wall.ElapsedSeconds();

  report->seed = spec.seed;
  report->classes = {};
  report->tenant_names.clear();
  report->tenants.assign(spec.tenants.size(), {});
  report->computed_ok = computed_ok;
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    report->tenant_names.push_back(spec.tenants[t].name);
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      Cell& cell = cells[t][c];
      OpStats& s = report->tenants[t][c];
      s.sent = cell.sent;
      s.ok = cell.ok;
      s.errors = cell.errors;
      s.rejected = cell.rejected;
      s.deadline_exceeded = cell.deadline_exceeded;
      s.degraded = cell.degraded;
      s.stale = cell.stale;
      s.cache_hits = cell.cache_hits;
      s.certified = cell.certified;
      s.latency = cell.latency.TakeSnapshot();
      OpStats& agg = report->classes[c];
      agg.sent += s.sent;
      agg.ok += s.ok;
      agg.errors += s.errors;
      agg.rejected += s.rejected;
      agg.deadline_exceeded += s.deadline_exceeded;
      agg.degraded += s.degraded;
      agg.stale += s.stale;
      agg.cache_hits += s.cache_hits;
      agg.certified += s.certified;
    }
  }
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    report->classes[c].latency = class_latency[c].TakeSnapshot();
  }
  return Status::Ok();
}

}  // namespace resacc

#ifndef RESACC_ALGO_BEPI_H_
#define RESACC_ALGO_BEPI_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/la/dense_matrix.h"

namespace resacc {

struct BePiOptions {
  // SlashBurn hubs removed per iteration; 0 = auto (max(4, n/200)).
  NodeId hubs_per_iteration = 0;
  // Upper bound on spoke-block size (each block is dense-factored).
  NodeId max_block_size = 512;
  // BuildIndex fails with kResourceExhausted if the projected factor
  // storage (dense Schur complement + block LUs) exceeds this (0 = off).
  // This is the knob that reproduces the paper's o.o.m. rows in Table IV.
  std::size_t memory_budget_bytes = 0;
};

// BePI (Jung et al. [14], simplified — see DESIGN.md "Baseline fidelity"):
// a matrix-based index-oriented method. Offline, SlashBurn reorders the
// RWR system matrix A = I - (1-alpha) Ptilde^T into
//
//   [ H11  H12 ]   non-hub (spoke) part: block diagonal, small blocks
//   [ H21  H22 ]   hub part
//
// factors every H11 block densely, forms the hub Schur complement
// S = H22 - H21 H11^{-1} H12 *densely*, and LU-factors it — the dense hub
// block is exactly what makes BePI memory-hungry on large graphs. Online,
// a query is two block triangular solves plus one dense solve.
//
// Precomputed factors cannot depend on the query source, so on graphs with
// sinks the index requires DanglingPolicy::kAbsorb (like FORA+).
class BePi : public IndexedSsrwrAlgorithm {
 public:
  BePi(const Graph& graph, const RwrConfig& config,
       const BePiOptions& options = {});

  const std::string& name() const override { return name_; }

  Status BuildIndex() override;
  bool IndexReady() const override { return index_ready_; }
  std::size_t IndexBytes() const override;

  std::vector<Score> Query(NodeId source) override;

  std::size_t num_hubs() const { return hub_count_; }
  std::size_t num_blocks() const { return blocks_.size(); }

 private:
  // One spoke block: its nodes (new-order positions are contiguous) and
  // the dense LU factor of its diagonal sub-matrix.
  struct SpokeBlock {
    std::size_t offset = 0;  // first new-order index of the block
    std::vector<NodeId> nodes;
    std::unique_ptr<LuDecomposition> factor;
  };

  // Solves H11 x = b in place (b indexed by new order, size n1).
  void SolveSpoke(std::vector<double>& b) const;

  const Graph& graph_;
  RwrConfig config_;
  BePiOptions options_;
  std::string name_;
  bool index_ready_ = false;

  std::size_t hub_count_ = 0;
  std::size_t spoke_count_ = 0;           // n1
  std::vector<NodeId> new_order_;         // new index -> node
  std::vector<NodeId> position_;          // node -> new index
  std::vector<std::uint32_t> block_of_;   // new index (< n1) -> block id
  std::vector<SpokeBlock> blocks_;

  // Off-diagonal couplings in new-order coordinates. H12 is stored
  // column-wise (h12_cols_[j] lists (spoke row i, w) for hub column j) —
  // both the Schur assembly and the query consume it per column. H21 is
  // stored row-wise. Values hold +w; the matrix entries are -w.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> h12_cols_;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> h21_;

  std::unique_ptr<LuDecomposition> schur_factor_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_BEPI_H_

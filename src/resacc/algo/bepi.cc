#include "resacc/algo/bepi.h"

#include <algorithm>

#include "resacc/algo/slashburn.h"
#include "resacc/util/check.h"

namespace resacc {

BePi::BePi(const Graph& graph, const RwrConfig& config,
           const BePiOptions& options)
    : graph_(graph), config_(config), options_(options), name_("BePI") {
  RESACC_CHECK(config_.Validate().ok());
  if (options_.hubs_per_iteration == 0) {
    options_.hubs_per_iteration =
        std::max<NodeId>(4, graph.num_nodes() / 200);
  }
}

Status BePi::BuildIndex() {
  index_ready_ = false;
  if (config_.dangling == DanglingPolicy::kBackToSource) {
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (graph_.OutDegree(u) == 0) {
        return Status::FailedPrecondition(
            "BePI factors cannot encode kBackToSource on graphs with "
            "sinks; use DanglingPolicy::kAbsorb");
      }
    }
  }

  const NodeId n = graph_.num_nodes();
  const double alpha = config_.alpha;

  // 1. Hub-and-spoke ordering.
  SlashBurnResult decomposition = RunSlashBurn(
      graph_, options_.hubs_per_iteration, options_.max_block_size);
  hub_count_ = decomposition.hubs.size();
  spoke_count_ = decomposition.num_spoke_nodes();
  RESACC_CHECK(hub_count_ + spoke_count_ == n);

  // 2. Memory projection before any heavy allocation.
  std::size_t projected = hub_count_ * hub_count_ * sizeof(double);
  for (const auto& block : decomposition.spokes) {
    projected += block.size() * block.size() * sizeof(double);
  }
  if (options_.memory_budget_bytes > 0 &&
      projected > options_.memory_budget_bytes) {
    return Status::ResourceExhausted(
        "BePI dense factors exceed memory budget (" +
        std::to_string(projected) + " bytes projected)");
  }

  // 3. New ordering: spoke blocks first (contiguous), hubs last.
  new_order_.clear();
  new_order_.reserve(n);
  position_.assign(n, kInvalidNode);
  blocks_.clear();
  blocks_.reserve(decomposition.spokes.size());
  block_of_.assign(spoke_count_, 0);
  for (auto& block_nodes : decomposition.spokes) {
    SpokeBlock block;
    block.offset = new_order_.size();
    for (NodeId v : block_nodes) {
      block_of_[new_order_.size()] = static_cast<std::uint32_t>(blocks_.size());
      position_[v] = static_cast<NodeId>(new_order_.size());
      new_order_.push_back(v);
    }
    block.nodes = std::move(block_nodes);
    blocks_.push_back(std::move(block));
  }
  for (NodeId hub : decomposition.hubs) {
    position_[hub] = static_cast<NodeId>(new_order_.size());
    new_order_.push_back(hub);
  }

  // 4. Assemble A = I - (1-alpha) Ptilde^T in the new order, split into
  // the four blocks. A[pv][pu] -= (1-alpha)/d_out(u) per edge (u, v);
  // sinks get a self loop (kAbsorb semantics, exact — see ExactInverse).
  const std::size_t n1 = spoke_count_;
  const std::size_t n2 = hub_count_;
  h12_cols_.assign(n2, {});
  h21_.assign(n2, {});
  DenseMatrix schur(n2, n2);
  for (std::size_t j = 0; j < n2; ++j) schur.At(j, j) = 1.0;
  for (auto& block : blocks_) {
    DenseMatrix dense(block.nodes.size(), block.nodes.size());
    for (std::size_t i = 0; i < block.nodes.size(); ++i) dense.At(i, i) = 1.0;
    block.factor = nullptr;
    // Dense block contents are filled in the edge sweep below; stash the
    // matrix temporarily via a local vector of matrices. To avoid a second
    // sweep we fill directly here using edges of the block's nodes.
    for (std::size_t local_u = 0; local_u < block.nodes.size(); ++local_u) {
      const NodeId u = block.nodes[local_u];
      const auto neighbors = graph_.OutNeighbors(u);
      if (neighbors.empty()) {
        dense.At(local_u, local_u) -= (1.0 - alpha);
        continue;
      }
      const double w = (1.0 - alpha) / static_cast<double>(neighbors.size());
      for (NodeId v : neighbors) {
        const NodeId pv = position_[v];
        if (pv < n1 && block_of_[pv] == block_of_[block.offset]) {
          dense.At(pv - block.offset, local_u) -= w;
        } else if (pv < n1) {
          // Impossible by construction: two spoke blocks are disconnected.
          RESACC_CHECK_MSG(false, "edge between distinct spoke blocks");
        } else {
          // Spoke -> hub coupling: row pv-n1 of H21, column = new spoke idx.
          h21_[pv - n1].emplace_back(
              static_cast<std::uint32_t>(block.offset + local_u), w);
        }
      }
    }
    block.factor = std::make_unique<LuDecomposition>(std::move(dense));
    if (!block.factor->ok()) {
      return Status::Internal("singular spoke block in BePI factorization");
    }
  }
  // Hub rows: edges out of hubs couple into H12 (spoke rows) or H22.
  for (std::size_t j = 0; j < n2; ++j) {
    const NodeId u = new_order_[n1 + j];
    const auto neighbors = graph_.OutNeighbors(u);
    if (neighbors.empty()) {
      schur.At(j, j) -= (1.0 - alpha);
      continue;
    }
    const double w = (1.0 - alpha) / static_cast<double>(neighbors.size());
    for (NodeId v : neighbors) {
      const NodeId pv = position_[v];
      if (pv < n1) {
        h12_cols_[j].emplace_back(static_cast<std::uint32_t>(pv), w);
      } else {
        schur.At(pv - n1, j) -= w;
      }
    }
  }

  // 5. Schur complement S = H22 - H21 H11^{-1} H12, column by column.
  // (Note the h21_/h12_ values store +w; the matrix entries are -w, and
  // the two sign flips cancel in H21 H11^{-1} H12, so the correction is
  // subtracted as computed.)
  std::vector<double> column(n1, 0.0);
  for (std::size_t j = 0; j < n2; ++j) {
    if (h12_cols_[j].empty()) continue;
    std::fill(column.begin(), column.end(), 0.0);
    for (const auto& [row, w] : h12_cols_[j]) {
      column[row] = -w;  // H12 entry is -w
    }
    SolveSpoke(column);  // column = H11^{-1} H12[:, j]
    for (std::size_t r = 0; r < n2; ++r) {
      double dot = 0.0;
      for (const auto& [col, w] : h21_[r]) {
        dot += (-w) * column[col];  // H21 entry is -w
      }
      schur.At(r, j) -= dot;
    }
  }

  schur_factor_ = std::make_unique<LuDecomposition>(std::move(schur));
  if (!schur_factor_->ok()) {
    return Status::Internal("singular Schur complement in BePI");
  }
  index_ready_ = true;
  return Status::Ok();
}

void BePi::SolveSpoke(std::vector<double>& b) const {
  RESACC_CHECK(b.size() == spoke_count_);
  std::vector<double> local;
  for (const auto& block : blocks_) {
    const std::size_t size = block.nodes.size();
    bool any = false;
    for (std::size_t i = 0; i < size; ++i) {
      if (b[block.offset + i] != 0.0) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    local.assign(b.begin() + static_cast<long>(block.offset),
                 b.begin() + static_cast<long>(block.offset + size));
    const std::vector<double> solved = block.factor->Solve(local);
    std::copy(solved.begin(), solved.end(),
              b.begin() + static_cast<long>(block.offset));
  }
}

std::size_t BePi::IndexBytes() const {
  std::size_t bytes = 0;
  if (schur_factor_ != nullptr) bytes += schur_factor_->MemoryBytes();
  for (const auto& block : blocks_) {
    if (block.factor != nullptr) bytes += block.factor->MemoryBytes();
  }
  for (const auto& col : h12_cols_) {
    bytes += col.size() * sizeof(std::pair<std::uint32_t, double>);
  }
  for (const auto& row : h21_) {
    bytes += row.size() * sizeof(std::pair<std::uint32_t, double>);
  }
  bytes += new_order_.size() * sizeof(NodeId) * 2;
  return bytes;
}

std::vector<Score> BePi::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_CHECK_MSG(index_ready_, "call BuildIndex() first");
  const std::size_t n1 = spoke_count_;
  const std::size_t n2 = hub_count_;

  // Permuted RHS b = alpha * e_source.
  std::vector<double> b1(n1, 0.0);
  std::vector<double> b2(n2, 0.0);
  const NodeId pos = position_[source];
  if (pos < n1) {
    b1[pos] = config_.alpha;
  } else {
    b2[pos - n1] = config_.alpha;
  }

  // y1 = H11^{-1} b1.
  std::vector<double> y1 = b1;
  SolveSpoke(y1);

  // rhs2 = b2 - H21 y1; x2 = S^{-1} rhs2.
  for (std::size_t r = 0; r < n2; ++r) {
    double dot = 0.0;
    for (const auto& [col, w] : h21_[r]) dot += (-w) * y1[col];
    b2[r] -= dot;
  }
  const std::vector<double> x2 = schur_factor_->Solve(b2);

  // x1 = H11^{-1} (b1 - H12 x2) = y1 - H11^{-1} (H12 x2).
  std::vector<double> correction(n1, 0.0);
  bool any = false;
  for (std::size_t j = 0; j < n2; ++j) {
    const double xj = x2[j];
    if (xj == 0.0) continue;
    for (const auto& [row, w] : h12_cols_[j]) {
      correction[row] += (-w) * xj;
      any = true;
    }
  }
  if (any) SolveSpoke(correction);

  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (std::size_t i = 0; i < n1; ++i) {
    scores[new_order_[i]] = y1[i] - correction[i];
  }
  for (std::size_t j = 0; j < n2; ++j) {
    scores[new_order_[n1 + j]] = x2[j];
  }
  return scores;
}

}  // namespace resacc

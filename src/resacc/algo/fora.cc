#include "resacc/algo/fora.h"

#include <cmath>

#include "resacc/util/check.h"
#include "resacc/util/timer.h"

namespace resacc {

Fora::Fora(const Graph& graph, const RwrConfig& config,
           const ForaOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("FORA"),
      state_(graph.num_nodes()),
      rng_(config.seed),
      walk_engine_(options.walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  if (options_.r_max > 0.0) {
    r_max_ = options_.r_max;
  } else {
    const double c = config_.WalkCountCoefficient();
    r_max_ = 1.0 / std::sqrt(static_cast<double>(graph_.num_edges()) * c);
  }
}

std::vector<Score> Fora::Query(NodeId source) {
  // Same code path as the controlled variant with no token (identical RNG
  // draws, bit-identical scores).
  return QueryControlled(source, QueryControl{}).scores;
}

ControlledQueryResult Fora::QueryControlled(NodeId source,
                                            const QueryControl& control) {
  RESACC_CHECK(source < graph_.num_nodes());
  last_stats_ = ForaQueryStats();
  Timer total;
  const CancellationToken* cancel = control.cancel;

  ControlledQueryResult result;
  result.achieved_epsilon = config_.epsilon;

  auto tag_degraded = [&](Score uncorrected_mass) {
    result.uncorrected_mass = uncorrected_mass;
    if (uncorrected_mass > 0.0) {
      result.degraded = true;
      result.achieved_epsilon =
          config_.epsilon + uncorrected_mass / config_.delta;
    }
  };

  // Phase 1: forward push with early termination (large r_max).
  Timer phase;
  state_.Reset();
  state_.SetResidue(source, 1.0);
  const NodeId seeds[] = {source};
  last_stats_.push =
      RunForwardSearch(graph_, config_, source, r_max_, seeds,
                       /*push_seeds_unconditionally=*/false, state_,
                       PushOrder::kFifo, cancel);
  last_stats_.push_seconds = phase.ElapsedSeconds();
  if (ShouldStop(cancel)) {
    result.status = cancel->StopStatus();
    result.scores.assign(graph_.num_nodes(), 0.0);
    for (NodeId v : state_.touched()) result.scores[v] = state_.reserve(v);
    tag_degraded(state_.ResidueSum());
    last_stats_.total_seconds = total.ElapsedSeconds();
    return result;
  }

  // Phase 2: random walks from every node with non-zero residue.
  phase.Restart();
  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (NodeId v : state_.touched()) scores[v] = state_.reserve(v);

  double remaining_budget = 0.0;
  if (options_.time_budget_seconds > 0.0) {
    remaining_budget =
        options_.time_budget_seconds - total.ElapsedSeconds();
    if (remaining_budget <= 0.0) remaining_budget = 1e-9;  // already spent
  }
  Rng query_rng = rng_.Fork(source);
  last_stats_.remedy =
      RunRemedy(graph_, config_, source, state_, query_rng, scores,
                options_.walk_scale, remaining_budget, &walk_engine_, cancel);
  last_stats_.budget_exhausted = last_stats_.remedy.budget_exhausted;
  last_stats_.remedy_seconds = phase.ElapsedSeconds();
  last_stats_.total_seconds = total.ElapsedSeconds();

  if (last_stats_.remedy.cancelled) result.status = cancel->StopStatus();
  tag_degraded(last_stats_.remedy.uncorrected_mass);
  result.scores = std::move(scores);
  return result;
}

}  // namespace resacc

#ifndef RESACC_ALGO_TOPPPR_H_
#define RESACC_ALGO_TOPPPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

struct TopPprOptions {
  // K of the top-K query. The paper adapts TopPPR to SSRWR with K = 1e5
  // (clamped to n here) and sweeps it in Appendix E.
  std::size_t top_k = 100000;
  // Forward-push threshold; <= 0 selects the FORA-style balanced default.
  Score r_max_f = 0.0;
  // How many boundary candidates around rank K get backward-push
  // refinement, and the refinement threshold factor relative to the
  // estimated K-th score.
  std::size_t boundary_width = 200;
  double backward_threshold_factor = 0.1;
  // Wall-clock budget in seconds for the refinement stage (0 = unlimited);
  // the equal-time comparison (Fig. 20) terminates TopPPR this way.
  double time_budget_seconds = 0.0;
};

// TopPPR (Wei et al. [29]), adapted for SSRWR as in the paper: forward push
// + random walks give rough whole-graph estimates, then backward pushes
// from the nodes straddling the rank-K boundary sharpen exactly the scores
// that decide top-K membership (the published algorithm's
// filter-and-refine structure, without its adaptive sampling schedule —
// see DESIGN.md "Baseline fidelity"). Accuracy concentrates on the top-K
// prefix: beyond it the estimates stay rough, which reproduces the paper's
// observation that TopPPR misorders the k >= 1e4 tail (Fig. 20(b)).
//
// Backward pushes require DanglingPolicy::kAbsorb on graphs with sinks.
class TopPpr : public SsrwrAlgorithm {
 public:
  TopPpr(const Graph& graph, const RwrConfig& config,
         const TopPprOptions& options = {});

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

  // Top-K ids (descending score) from the most recent Query.
  const std::vector<NodeId>& last_top_k() const { return last_top_k_; }
  std::uint64_t last_backward_pushes() const { return last_backward_pushes_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  TopPprOptions options_;
  Score r_max_f_;
  std::string name_;
  PushState forward_state_;
  PushState backward_state_;
  Rng rng_;
  std::vector<NodeId> last_top_k_;
  std::uint64_t last_backward_pushes_ = 0;
};

}  // namespace resacc

#endif  // RESACC_ALGO_TOPPPR_H_

#ifndef RESACC_ALGO_FORA_PLUS_H_
#define RESACC_ALGO_FORA_PLUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

struct ForaPlusOptions {
  // Forward-push threshold; <= 0 selects FORA's balanced default.
  Score r_max = 0.0;
  // Abort BuildIndex with kResourceExhausted if the index would exceed
  // this many bytes (0 = unlimited). Lets the benches reproduce the
  // paper's o.o.m. entries under a scaled memory budget.
  std::size_t memory_budget_bytes = 0;
};

// FORA+ (Wang et al. [28]): FORA plus an offline index of precomputed
// random-walk endpoints. After a forward push the residue of node v is at
// most r_max * d_out(v), so ceil(c * r_max * d_out(v)) stored endpoints
// per node always cover the remedy demand; the query phase replaces walk
// simulation with pool lookups.
//
// Precomputed walks cannot depend on the query source, so on graphs with
// sinks the index requires DanglingPolicy::kAbsorb (BuildIndex fails with
// kFailedPrecondition otherwise); see DESIGN.md.
class ForaPlus : public IndexedSsrwrAlgorithm {
 public:
  ForaPlus(const Graph& graph, const RwrConfig& config,
           const ForaPlusOptions& options = {});

  const std::string& name() const override { return name_; }

  Status BuildIndex() override;
  bool IndexReady() const override { return index_ready_; }
  std::size_t IndexBytes() const override;

  // Index persistence: the offline phase is FORA+'s whole cost, so a real
  // deployment builds once and reloads. The file records the graph shape
  // and r_max; loading against a mismatched graph fails.
  Status SaveIndex(const std::string& path) const;
  Status LoadIndex(const std::string& path);

  std::vector<Score> Query(NodeId source) override;

  Score effective_r_max() const { return r_max_; }
  std::uint64_t index_walks() const { return pool_endpoints_.size(); }

 private:
  const Graph& graph_;
  RwrConfig config_;
  ForaPlusOptions options_;
  Score r_max_;
  std::string name_;
  PushState state_;
  Rng rng_;
  bool index_ready_ = false;

  // CSR pool of precomputed endpoints: walks from v occupy
  // pool_endpoints_[pool_offsets_[v] .. pool_offsets_[v+1]).
  std::vector<std::uint64_t> pool_offsets_;
  std::vector<NodeId> pool_endpoints_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_FORA_PLUS_H_

#include "resacc/algo/fora_plus.h"

#include <cmath>
#include <cstdio>

#include "resacc/core/random_walk.h"
#include "resacc/util/check.h"

namespace resacc {

ForaPlus::ForaPlus(const Graph& graph, const RwrConfig& config,
                   const ForaPlusOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("FORA+"),
      state_(graph.num_nodes()),
      rng_(config.seed ^ 0xf04a) {
  RESACC_CHECK(config_.Validate().ok());
  if (options_.r_max > 0.0) {
    r_max_ = options_.r_max;
  } else {
    const double c = config_.WalkCountCoefficient();
    r_max_ = 1.0 / std::sqrt(static_cast<double>(graph_.num_edges()) * c);
  }
}

Status ForaPlus::BuildIndex() {
  index_ready_ = false;
  if (config_.dangling == DanglingPolicy::kBackToSource) {
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
      if (graph_.OutDegree(u) == 0) {
        return Status::FailedPrecondition(
            "FORA+ walk index cannot encode kBackToSource on graphs with "
            "sinks; use DanglingPolicy::kAbsorb");
      }
    }
  }

  const double c = config_.WalkCountCoefficient();
  const NodeId n = graph_.num_nodes();

  // Size the pool first so the memory budget is checked before committing.
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const double degree =
        std::max<double>(1.0, static_cast<double>(graph_.OutDegree(v)));
    const std::uint64_t walks =
        static_cast<std::uint64_t>(std::ceil(c * r_max_ * degree));
    offsets[v + 1] = offsets[v] + walks;
  }
  const std::size_t projected_bytes =
      offsets.back() * sizeof(NodeId) + offsets.size() * sizeof(std::uint64_t);
  if (options_.memory_budget_bytes > 0 &&
      projected_bytes > options_.memory_budget_bytes) {
    return Status::ResourceExhausted("FORA+ index exceeds memory budget");
  }

  pool_offsets_ = std::move(offsets);
  pool_endpoints_.assign(pool_offsets_.back(), 0);
  WalkStats stats;
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config_.alpha);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t i = pool_offsets_[v]; i < pool_offsets_[v + 1]; ++i) {
      // restart_node = v is never used: kAbsorb was enforced above unless
      // the graph has no sinks, in which case the policies coincide.
      pool_endpoints_[i] = RandomWalkTerminalGeometric(
          graph_, config_, v, v, inv_log1m_alpha, rng_, stats);
    }
  }
  index_ready_ = true;
  return Status::Ok();
}

namespace {

constexpr std::uint64_t kIndexMagic = 0x464f5241'2b494458ULL;  // "FORA+IDX"

}  // namespace

Status ForaPlus::SaveIndex(const std::string& path) const {
  if (!index_ready_) {
    return Status::FailedPrecondition("no index to save; call BuildIndex()");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  const std::uint64_t header[4] = {kIndexMagic, graph_.num_nodes(),
                                   graph_.num_edges(),
                                   pool_endpoints_.size()};
  const double r_max = r_max_;
  bool ok = std::fwrite(header, sizeof(header), 1, file) == 1 &&
            std::fwrite(&r_max, sizeof(r_max), 1, file) == 1 &&
            std::fwrite(pool_offsets_.data(), sizeof(std::uint64_t),
                        pool_offsets_.size(), file) == pool_offsets_.size() &&
            (pool_endpoints_.empty() ||
             std::fwrite(pool_endpoints_.data(), sizeof(NodeId),
                         pool_endpoints_.size(),
                         file) == pool_endpoints_.size());
  std::fclose(file);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::Ok();
}

Status ForaPlus::LoadIndex(const std::string& path) {
  index_ready_ = false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open index: " + path);
  }
  std::uint64_t header[4] = {0, 0, 0, 0};
  double r_max = 0.0;
  if (std::fread(header, sizeof(header), 1, file) != 1 ||
      std::fread(&r_max, sizeof(r_max), 1, file) != 1) {
    std::fclose(file);
    return Status::InvalidArgument("truncated index header: " + path);
  }
  if (header[0] != kIndexMagic) {
    std::fclose(file);
    return Status::InvalidArgument("bad magic (not a FORA+ index): " + path);
  }
  if (header[1] != graph_.num_nodes() || header[2] != graph_.num_edges()) {
    std::fclose(file);
    return Status::FailedPrecondition(
        "index was built for a different graph: " + path);
  }
  std::vector<std::uint64_t> offsets(graph_.num_nodes() + 1);
  std::vector<NodeId> endpoints(header[3]);
  const bool ok =
      std::fread(offsets.data(), sizeof(std::uint64_t), offsets.size(),
                 file) == offsets.size() &&
      (endpoints.empty() ||
       std::fread(endpoints.data(), sizeof(NodeId), endpoints.size(), file) ==
           endpoints.size());
  std::fclose(file);
  if (!ok || offsets.back() != endpoints.size()) {
    return Status::InvalidArgument("truncated index body: " + path);
  }
  r_max_ = r_max;
  pool_offsets_ = std::move(offsets);
  pool_endpoints_ = std::move(endpoints);
  index_ready_ = true;
  return Status::Ok();
}

std::size_t ForaPlus::IndexBytes() const {
  return pool_endpoints_.size() * sizeof(NodeId) +
         pool_offsets_.size() * sizeof(std::uint64_t);
}

std::vector<Score> ForaPlus::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_CHECK_MSG(index_ready_, "call BuildIndex() first");

  state_.Reset();
  state_.SetResidue(source, 1.0);
  const NodeId seeds[] = {source};
  RunForwardSearch(graph_, config_, source, r_max_, seeds,
                   /*push_seeds_unconditionally=*/false, state_);

  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (NodeId v : state_.touched()) scores[v] = state_.reserve(v);

  // Remedy via pool lookups: n_r(v) = ceil(r(v) * c) endpoints from v's
  // precomputed walks, each carrying weight r(v) / n_r(v).
  const double c = config_.WalkCountCoefficient();
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config_.alpha);
  WalkStats extra_stats;
  Rng query_rng = rng_.Fork(source);
  for (NodeId v : state_.touched()) {
    const Score residue = state_.residue(v);
    if (residue <= 0.0) continue;
    const std::uint64_t walks =
        static_cast<std::uint64_t>(std::ceil(residue * c));
    const Score weight = residue / static_cast<Score>(walks);
    const std::uint64_t available = pool_offsets_[v + 1] - pool_offsets_[v];
    const std::uint64_t from_pool = std::min(walks, available);
    for (std::uint64_t i = 0; i < from_pool; ++i) {
      scores[pool_endpoints_[pool_offsets_[v] + i]] += weight;
    }
    // The pool covers ceil(c * r_max * d_out(v)) >= n_r(v) by the residue
    // bound; simulate the (rare) overflow when a caller passed a custom
    // r_max that breaks the bound.
    for (std::uint64_t i = from_pool; i < walks; ++i) {
      const NodeId terminal = RandomWalkTerminalGeometric(
          graph_, config_, source, v, inv_log1m_alpha, query_rng, extra_stats);
      scores[terminal] += weight;
    }
  }
  return scores;
}

}  // namespace resacc

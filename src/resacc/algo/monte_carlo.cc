#include "resacc/algo/monte_carlo.h"

#include <cmath>

#include "resacc/util/check.h"

namespace resacc {

MonteCarlo::MonteCarlo(const Graph& graph, const RwrConfig& config,
                       double walk_scale)
    : graph_(graph),
      config_(config),
      walk_scale_(walk_scale),
      name_("MC"),
      rng_(config.seed) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(walk_scale_ > 0.0);
}

std::vector<Score> MonteCarlo::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  const std::uint64_t num_walks = static_cast<std::uint64_t>(
      std::ceil(config_.WalkCountCoefficient() * walk_scale_));
  RESACC_CHECK(num_walks > 0);

  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  const Score weight = 1.0 / static_cast<Score>(num_walks);
  Rng query_rng = rng_.Fork(source);
  last_walk_stats_ = WalkStats();
  for (std::uint64_t i = 0; i < num_walks; ++i) {
    const NodeId terminal = RandomWalkTerminal(graph_, config_, source, source,
                                               query_rng, last_walk_stats_);
    scores[terminal] += weight;
  }
  return scores;
}

}  // namespace resacc

#include "resacc/algo/monte_carlo.h"

#include <cmath>
#include <span>

#include "resacc/util/check.h"

namespace resacc {

MonteCarlo::MonteCarlo(const Graph& graph, const RwrConfig& config,
                       double walk_scale, std::size_t walk_threads)
    : graph_(graph),
      config_(config),
      walk_scale_(walk_scale),
      name_("MC"),
      rng_(config.seed),
      walk_engine_(walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(walk_scale_ > 0.0);
}

std::vector<Score> MonteCarlo::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  const std::uint64_t num_walks = static_cast<std::uint64_t>(
      std::ceil(config_.WalkCountCoefficient() * walk_scale_));
  RESACC_CHECK(num_walks > 0);

  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  const Score weight = 1.0 / static_cast<Score>(num_walks);
  Rng query_rng = rng_.Fork(source);
  const WalkSlice slice{source, num_walks, weight, /*stream=*/source};
  const WalkEngineStats engine_stats = walk_engine_.Run(
      graph_, config_, source, query_rng, std::span(&slice, 1), scores);
  last_walk_stats_ = WalkStats();
  last_walk_stats_.walks = engine_stats.walks;
  last_walk_stats_.steps = engine_stats.steps;
  return scores;
}

}  // namespace resacc

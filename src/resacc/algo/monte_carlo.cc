#include "resacc/algo/monte_carlo.h"

#include <cmath>
#include <span>

#include "resacc/util/check.h"

namespace resacc {

MonteCarlo::MonteCarlo(const Graph& graph, const RwrConfig& config,
                       double walk_scale, std::size_t walk_threads)
    : graph_(graph),
      config_(config),
      walk_scale_(walk_scale),
      name_("MC"),
      rng_(config.seed),
      walk_engine_(walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(walk_scale_ > 0.0);
}

std::vector<Score> MonteCarlo::Query(NodeId source) {
  // Same code path as the controlled variant with no token (identical RNG
  // draws, bit-identical scores).
  return QueryControlled(source, QueryControl{}).scores;
}

ControlledQueryResult MonteCarlo::QueryControlled(NodeId source,
                                                  const QueryControl& control) {
  RESACC_CHECK(source < graph_.num_nodes());
  const std::uint64_t num_walks = static_cast<std::uint64_t>(
      std::ceil(config_.WalkCountCoefficient() * walk_scale_));
  RESACC_CHECK(num_walks > 0);

  ControlledQueryResult result;
  result.achieved_epsilon = config_.epsilon;
  result.scores.assign(graph_.num_nodes(), 0.0);
  const Score weight = 1.0 / static_cast<Score>(num_walks);
  Rng query_rng = rng_.Fork(source);
  const WalkSlice slice{source, num_walks, weight, /*stream=*/source};
  const WalkEngineStats engine_stats = walk_engine_.Run(
      graph_, config_, source, query_rng, std::span(&slice, 1), result.scores,
      /*time_budget_seconds=*/0.0, control.cancel);
  last_walk_stats_ = WalkStats();
  last_walk_stats_.walks = engine_stats.walks;
  last_walk_stats_.steps = engine_stats.steps;

  if (engine_stats.cancelled) result.status = control.cancel->StopStatus();
  // MC is the remedy estimator with r_sum = 1: the skipped walk mass is
  // exactly the probability mass never deposited.
  result.uncorrected_mass = engine_stats.skipped_mass;
  if (result.uncorrected_mass > 0.0) {
    result.degraded = true;
    result.achieved_epsilon =
        config_.epsilon + result.uncorrected_mass / config_.delta;
  }
  return result;
}

}  // namespace resacc

#ifndef RESACC_ALGO_FORWARD_SEARCH_SOLVER_H_
#define RESACC_ALGO_FORWARD_SEARCH_SOLVER_H_

#include <string>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"

namespace resacc {

// Forward Search (Andersen et al. [2]) as a standalone SSRWR baseline
// ("FWD" in the paper's tables): local push with residue threshold
// r_max^f, reserves reported as the estimate, residues dropped — hence no
// output bound (Table I "Not given"). The paper runs it with
// r_max^f = 1e-12.
class ForwardSearchSolver : public SsrwrAlgorithm {
 public:
  ForwardSearchSolver(const Graph& graph, const RwrConfig& config,
                      Score r_max = 1e-12);

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

  const PushStats& last_push_stats() const { return last_push_stats_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  Score r_max_;
  std::string name_;
  PushState state_;
  PushStats last_push_stats_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_FORWARD_SEARCH_SOLVER_H_

#include "resacc/algo/inverse.h"

#include "resacc/util/check.h"

namespace resacc {

ExactInverse::ExactInverse(const Graph& graph, const RwrConfig& config)
    : graph_(graph), config_(config), name_("Inverse") {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK_MSG(graph_.num_nodes() <= kMaxNodes,
                   "ExactInverse is a dense oracle for small graphs only");
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    if (graph_.OutDegree(u) == 0) {
      has_dangling_ = true;
      break;
    }
  }
}

std::unique_ptr<LuDecomposition> ExactInverse::Factor(NodeId source) const {
  const NodeId n = graph_.num_nodes();
  const double alpha = config_.alpha;
  // A = I - (1 - alpha) * Ptilde^T, so A[v][u] -= (1-alpha) * P[u][v].
  DenseMatrix a = DenseMatrix::Identity(n);
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = graph_.OutNeighbors(u);
    if (neighbors.empty()) {
      if (config_.dangling == DanglingPolicy::kAbsorb) {
        a.At(u, u) -= (1.0 - alpha);  // self loop
      } else {
        a.At(source, u) -= (1.0 - alpha);  // jump back to the source
      }
      continue;
    }
    const double w = (1.0 - alpha) / static_cast<double>(neighbors.size());
    for (NodeId v : neighbors) a.At(v, u) -= w;
  }
  auto lu = std::make_unique<LuDecomposition>(std::move(a));
  RESACC_CHECK_MSG(lu->ok(), "RWR system matrix must be non-singular");
  return lu;
}

std::vector<Score> ExactInverse::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  const LuDecomposition* factor = nullptr;
  std::unique_ptr<LuDecomposition> per_query;
  if (has_dangling_ && config_.dangling == DanglingPolicy::kBackToSource) {
    per_query = Factor(source);
    factor = per_query.get();
  } else {
    if (cached_factor_ == nullptr) cached_factor_ = Factor(source);
    factor = cached_factor_.get();
  }

  std::vector<double> unit(graph_.num_nodes(), 0.0);
  unit[source] = config_.alpha;  // alpha * e_s
  std::vector<Score> scores = factor->Solve(unit);

  // Under kAbsorb the alpha factor undercounts sinks: a stuck walk
  // terminates with probability 1, not alpha. The solve distributes mass
  // correctly through the self loop (geometric series sums to 1), so no
  // correction is needed; the self-loop construction already encodes it.
  return scores;
}

}  // namespace resacc

#include "resacc/algo/particle_filter.h"

#include <cmath>
#include <deque>

#include "resacc/util/check.h"

namespace resacc {

ParticleFilter::ParticleFilter(const Graph& graph, const RwrConfig& config,
                               const ParticleFilterOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("PF"),
      rng_(config.seed ^ 0x9f11) {
  RESACC_CHECK(config_.Validate().ok());
  if (options_.total_walks <= 0.0) {
    options_.total_walks = config_.WalkCountCoefficient();
  }
  RESACC_CHECK(options_.w_min > 0.0);
}

std::vector<Score> ParticleFilter::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  const double alpha = config_.alpha;
  const double w_total = options_.total_walks;
  const double w_min = options_.w_min;

  std::vector<double> walks(graph_.num_nodes(), 0.0);
  std::vector<double> terminated(graph_.num_nodes(), 0.0);
  walks[source] = w_total;

  std::deque<NodeId> queue{source};
  std::vector<std::uint8_t> in_queue(graph_.num_nodes(), 0);
  in_queue[source] = 1;
  Rng query_rng = rng_.Fork(source);

  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    in_queue[v] = 0;

    const double w_v = walks[v];
    if (w_v <= 0.0) continue;
    walks[v] = 0.0;
    terminated[v] += alpha * w_v;
    double remaining = (1.0 - alpha) * w_v;

    auto deposit = [&](NodeId u, double amount) {
      walks[u] += amount;
      if (!in_queue[u]) {
        in_queue[u] = 1;
        queue.push_back(u);
      }
    };

    const auto neighbors = graph_.OutNeighbors(v);
    if (neighbors.empty()) {
      if (config_.dangling == DanglingPolicy::kAbsorb) {
        terminated[v] += remaining;
      } else {
        deposit(source, remaining);
      }
      continue;
    }

    const double degree = static_cast<double>(neighbors.size());
    if (remaining / degree >= w_min) {
      // Deterministic distribution phase.
      const double share = remaining / degree;
      for (NodeId u : neighbors) deposit(u, share);
    } else {
      // Random spraying phase: floor(remaining / w_min) packets of w_min
      // walks each; the remainder below one packet is dropped — the
      // quantization bias of PF.
      const std::uint64_t sprays =
          static_cast<std::uint64_t>(std::floor(remaining / w_min));
      for (std::uint64_t i = 0; i < sprays; ++i) {
        const NodeId u = neighbors[query_rng.NextBounded32(
            static_cast<std::uint32_t>(neighbors.size()))];
        deposit(u, w_min);
      }
    }
  }

  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    scores[v] = terminated[v] / w_total;
  }
  return scores;
}

}  // namespace resacc

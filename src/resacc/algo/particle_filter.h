#ifndef RESACC_ALGO_PARTICLE_FILTER_H_
#define RESACC_ALGO_PARTICLE_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

struct ParticleFilterOptions {
  // Total walks w distributed from the source. <= 0 selects the MC count
  // (WalkCountCoefficient), the paper's fair-comparison setting
  // (Section VII-C: "the total number of random walks used in PF to be
  // equal to that in MC").
  double total_walks = 0.0;
  // The switch threshold w_min: nodes carrying at least w_min * d_out
  // walks spread them deterministically, the rest spray randomly.
  // The paper tunes w_min = 1e4 on its graphs.
  double w_min = 1e4;
};

// Particle Filtering (Section VI-B): a deterministic-distribution variant
// of Monte Carlo. Walk counts are propagated like forward-push mass
// (deterministic phase); a node left with fewer than w_min * d_out walks
// instead sends floor(w_v / w_min) random sprays of w_min walks each to
// uniform out-neighbours, discarding the remainder — the quantization that
// gives PF its bias (no accuracy guarantee; larger w_min, larger error).
class ParticleFilter : public SsrwrAlgorithm {
 public:
  ParticleFilter(const Graph& graph, const RwrConfig& config,
                 const ParticleFilterOptions& options = {});

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

 private:
  const Graph& graph_;
  RwrConfig config_;
  ParticleFilterOptions options_;
  std::string name_;
  Rng rng_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_PARTICLE_FILTER_H_

#ifndef RESACC_ALGO_MONTE_CARLO_H_
#define RESACC_ALGO_MONTE_CARLO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "resacc/core/random_walk.h"
#include "resacc/core/walk_engine.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// Random Walk sampling (Fogaras et al. [9]), "MC" in the paper: simulate
// walks from the source and report terminal frequencies. To match the
// relative-error guarantee of Definition 1 it uses the same concentration
// bound as the remedy phase with r_sum = 1, i.e. c = WalkCountCoefficient()
// walks (times `walk_scale`).
class MonteCarlo : public SsrwrAlgorithm {
 public:
  // walk_threads: walk-engine parallelism (0 = hardware concurrency).
  // Scores are bit-identical for every value (walk_engine.h).
  MonteCarlo(const Graph& graph, const RwrConfig& config,
             double walk_scale = 1.0, std::size_t walk_threads = 1);

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

  // Cancellable variant: the token is polled at every walk block. A
  // stopped run keeps the walks already merged and scales nothing — each
  // completed walk still deposits 1/num_walks, so the estimate undershoots
  // by exactly the skipped walk mass, which is reported as
  // uncorrected_mass (r_sum = 1 for MC).
  ControlledQueryResult QueryControlled(NodeId source,
                                        const QueryControl& control) override;

  const WalkStats& last_walk_stats() const { return last_walk_stats_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  double walk_scale_;
  std::string name_;
  Rng rng_;
  WalkEngine walk_engine_;
  WalkStats last_walk_stats_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_MONTE_CARLO_H_

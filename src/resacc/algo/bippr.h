#ifndef RESACC_ALGO_BIPPR_H_
#define RESACC_ALGO_BIPPR_H_

#include <cstdint>
#include <string>

#include "resacc/core/backward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

struct BiPprOptions {
  // Backward-push threshold r_max^b; <= 0 selects a balanced default
  // sqrt(m / c) capped at 1 (pushing gets cheaper as c grows).
  Score r_max_b = 0.0;
  // Walk multiplier; walks = ceil(c * r_max^b * walk_scale).
  double walk_scale = 1.0;
};

// BiPPR (Lofgren et al. [17]): pairwise PPR estimation combining a
// backward push from the target with random walks from the source:
//
//   pi(s, t) ~= reserve_t(s) + (1/W) * sum_i residue_t(X_i),
//
// where X_i is the terminal node of the i-th walk from s. Requires
// DanglingPolicy::kAbsorb on graphs with sinks (backward push cannot see
// the query source). Adapting it to SSRWR needs one backward pass per
// node, which is exactly why the paper calls it out as too slow for
// single-source use — the bench only measures the pairwise primitive.
class BiPpr {
 public:
  BiPpr(const Graph& graph, const RwrConfig& config,
        const BiPprOptions& options = {});

  const std::string& name() const { return name_; }

  // Point estimate of pi(source, target).
  Score EstimatePair(NodeId source, NodeId target);

  Score effective_r_max_b() const { return r_max_b_; }
  const PushStats& last_backward_stats() const { return last_backward_; }
  std::uint64_t last_walks() const { return last_walks_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  BiPprOptions options_;
  Score r_max_b_;
  std::string name_;
  PushState state_;
  Rng rng_;
  PushStats last_backward_;
  std::uint64_t last_walks_ = 0;
};

}  // namespace resacc

#endif  // RESACC_ALGO_BIPPR_H_

#include "resacc/algo/forward_search_solver.h"

#include "resacc/util/check.h"

namespace resacc {

ForwardSearchSolver::ForwardSearchSolver(const Graph& graph,
                                         const RwrConfig& config, Score r_max)
    : graph_(graph),
      config_(config),
      r_max_(r_max),
      name_("FWD"),
      state_(graph.num_nodes()) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(r_max_ > 0.0);
}

std::vector<Score> ForwardSearchSolver::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  state_.Reset();
  state_.SetResidue(source, 1.0);
  const NodeId seeds[] = {source};
  last_push_stats_ =
      RunForwardSearch(graph_, config_, source, r_max_, seeds,
                       /*push_seeds_unconditionally=*/false, state_);
  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (NodeId v : state_.touched()) scores[v] = state_.reserve(v);
  return scores;
}

}  // namespace resacc

#include "resacc/algo/bippr.h"

#include <cmath>

#include "resacc/core/random_walk.h"
#include "resacc/util/check.h"

namespace resacc {

BiPpr::BiPpr(const Graph& graph, const RwrConfig& config,
             const BiPprOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("BiPPR"),
      state_(graph.num_nodes()),
      rng_(config.seed ^ 0xb199) {
  RESACC_CHECK(config_.Validate().ok());
  if (options_.r_max_b > 0.0) {
    r_max_b_ = options_.r_max_b;
  } else {
    const double c = config_.WalkCountCoefficient();
    r_max_b_ = std::min(
        1.0, std::sqrt(static_cast<double>(graph_.num_edges()) / c));
  }
}

Score BiPpr::EstimatePair(NodeId source, NodeId target) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_CHECK(target < graph_.num_nodes());

  state_.Reset();
  last_backward_ =
      RunBackwardSearch(graph_, config_, target, r_max_b_, state_);

  // The walk count follows the bidirectional bound: every residue is below
  // r_max^b, so c * r_max^b walks suffice for the relative guarantee.
  const double c = config_.WalkCountCoefficient();
  const std::uint64_t walks = static_cast<std::uint64_t>(
      std::ceil(c * r_max_b_ * options_.walk_scale));
  last_walks_ = walks;

  Score estimate = state_.reserve(source);
  if (walks == 0) return estimate;

  WalkStats stats;
  Rng pair_rng = rng_.Fork((static_cast<std::uint64_t>(source) << 32) ^
                           target);
  Score walk_sum = 0.0;
  for (std::uint64_t i = 0; i < walks; ++i) {
    const NodeId terminal =
        RandomWalkTerminal(graph_, config_, source, source, pair_rng, stats);
    walk_sum += state_.residue(terminal);
  }
  return estimate + walk_sum / static_cast<Score>(walks);
}

}  // namespace resacc

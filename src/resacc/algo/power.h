#ifndef RESACC_ALGO_POWER_H_
#define RESACC_ALGO_POWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"

namespace resacc {

// Power iteration (Pan et al. [20]) — the index-free iterative baseline and
// the library's ground-truth generator.
//
// Implemented as cumulative power iteration on the exact walk semantics:
// per round, every node converts alpha of its "alive mass" into score and
// forwards the rest (dangling mass per the configured policy), which is a
// synchronous whole-graph forward push. After round k the unconverted mass
// is (1 - alpha)^k(+ policy effects), so the L1 error is below
// `tolerance` once the alive mass drops under it — that residual mass is
// the additive error bound the paper's Table I lists for Power.
class PowerIteration : public SsrwrAlgorithm {
 public:
  PowerIteration(const Graph& graph, const RwrConfig& config,
                 double tolerance = 1e-9, std::uint32_t max_iterations = 10000);

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

  // Iterations used by the most recent Query.
  std::uint32_t last_iterations() const { return last_iterations_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  double tolerance_;
  std::uint32_t max_iterations_;
  std::string name_;
  std::uint32_t last_iterations_ = 0;
};

}  // namespace resacc

#endif  // RESACC_ALGO_POWER_H_

#ifndef RESACC_ALGO_FORA_H_
#define RESACC_ALGO_FORA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/remedy.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// Tuning of FORA (Wang et al. [28]), the state-of-the-art index-free
// baseline: forward push with an early-termination threshold, then the
// remedy estimator over the remaining residues.
struct ForaOptions {
  // Forward-push threshold r_max^f. <= 0 selects the cost-balancing
  // default 1 / sqrt(m * c), which equalizes the push phase
  // O(1/(alpha r_max)) against the walk phase O(m r_max c / alpha).
  Score r_max = 0.0;
  // Remedy walk multiplier (Appendix F fair comparison); 1.0 = Theorem 3.
  double walk_scale = 1.0;
  // Wall-clock budget in seconds; 0 = unlimited. Used by the paper's
  // equal-time comparison (Fig. 6(a)): the remedy loop stops issuing walks
  // once the budget is exhausted, leaving the remaining residues
  // uncorrected — "FORA cannot generate random walks from most nodes when
  // the time is over". Checked every WalkEngine::kBlockWalks walks.
  double time_budget_seconds = 0.0;
  // Threads for the walk phase (0 = hardware concurrency). Speed only;
  // scores are bit-identical for every value (walk_engine.h).
  std::size_t walk_threads = 1;
};

// Per-query diagnostics.
struct ForaQueryStats {
  double push_seconds = 0.0;
  double remedy_seconds = 0.0;
  double total_seconds = 0.0;
  PushStats push;
  RemedyStats remedy;
  bool budget_exhausted = false;
};

class Fora : public SsrwrAlgorithm {
 public:
  Fora(const Graph& graph, const RwrConfig& config,
       const ForaOptions& options = {});

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

  // Cancellable variant: polls the token during the push phase (every few
  // hundred dequeues) and at every walk block. A stop — or the solver's
  // own time budget truncating the walk phase — reports the uncorrected
  // residue mass and achieved_epsilon = epsilon + uncorrected / delta.
  ControlledQueryResult QueryControlled(NodeId source,
                                        const QueryControl& control) override;

  const ForaQueryStats& last_stats() const { return last_stats_; }
  Score effective_r_max() const { return r_max_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  ForaOptions options_;
  Score r_max_;
  std::string name_;
  PushState state_;
  Rng rng_;
  WalkEngine walk_engine_;
  ForaQueryStats last_stats_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_FORA_H_

#ifndef RESACC_ALGO_SLASHBURN_H_
#define RESACC_ALGO_SLASHBURN_H_

#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Result of SlashBurn-style hub-and-spoke decomposition: `hubs` in
// extraction order, and `spokes` — groups of non-hub nodes such that no
// edge connects two different groups once the hubs are removed (each group
// is a connected component of the hub-free residual graph, possibly split
// further by later iterations).
struct SlashBurnResult {
  std::vector<NodeId> hubs;
  std::vector<std::vector<NodeId>> spokes;

  std::size_t num_spoke_nodes() const {
    std::size_t total = 0;
    for (const auto& block : spokes) total += block.size();
    return total;
  }
};

// SlashBurn (Kang & Faloutsos), the node reordering BePI builds on:
// repeatedly (1) remove the `hubs_per_iteration` highest-degree nodes of
// the remaining graph (they become hubs), (2) take the connected components
// of the remainder (undirected connectivity): every component except the
// largest becomes a spoke block, and the largest continues to the next
// iteration. Stops when the largest remaining component has at most
// `max_block_size` nodes (it becomes the final spoke block), so every
// spoke block is a valid small diagonal block for BePI's factorization.
SlashBurnResult RunSlashBurn(const Graph& graph, NodeId hubs_per_iteration,
                             NodeId max_block_size);

}  // namespace resacc

#endif  // RESACC_ALGO_SLASHBURN_H_

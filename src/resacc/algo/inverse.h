#ifndef RESACC_ALGO_INVERSE_H_
#define RESACC_ALGO_INVERSE_H_

#include <memory>
#include <string>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/la/dense_matrix.h"

namespace resacc {

// Exact RWR via dense matrix inversion (Tong et al. [23]):
//   pi_s = alpha * (I - (1 - alpha) * Ptilde^T)^(-1) e_s,
// where Ptilde applies the dangling policy exactly: under kAbsorb a sink
// gets a self loop (the stuck walk terminates there); under kBackToSource
// a sink's row is e_s, which depends on the query source, so the LU factor
// is recomputed per source in that case (kAbsorb factors once).
//
// O(n^3) factorization / O(n^2) memory: the library's oracle for tests and
// tiny graphs only. Construction CHECKs n <= kMaxNodes.
class ExactInverse : public SsrwrAlgorithm {
 public:
  static constexpr NodeId kMaxNodes = 4096;

  ExactInverse(const Graph& graph, const RwrConfig& config);

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

 private:
  std::unique_ptr<LuDecomposition> Factor(NodeId source) const;

  const Graph& graph_;
  RwrConfig config_;
  std::string name_;
  bool has_dangling_ = false;
  std::unique_ptr<LuDecomposition> cached_factor_;  // kAbsorb or no sinks
};

}  // namespace resacc

#endif  // RESACC_ALGO_INVERSE_H_

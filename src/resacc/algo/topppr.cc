#include "resacc/algo/topppr.h"

#include <algorithm>
#include <cmath>

#include "resacc/core/backward_push.h"
#include "resacc/core/forward_push.h"
#include "resacc/core/remedy.h"
#include "resacc/util/check.h"
#include "resacc/util/timer.h"
#include "resacc/util/top_k.h"

namespace resacc {

TopPpr::TopPpr(const Graph& graph, const RwrConfig& config,
               const TopPprOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("TopPPR"),
      forward_state_(graph.num_nodes()),
      backward_state_(graph.num_nodes()),
      rng_(config.seed ^ 0x707a) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(options_.top_k >= 1);
  options_.top_k = std::min<std::size_t>(options_.top_k, graph.num_nodes());

  // The rough phase only needs to resolve scores near the K-th largest, so
  // its effective delta is 1/K rather than 1/n — fewer walks when K << n.
  RwrConfig rough = config_;
  rough.delta =
      std::max(config_.delta, 1.0 / static_cast<double>(options_.top_k));
  config_ = rough;
  if (options_.r_max_f <= 0.0) {
    const double c = config_.WalkCountCoefficient();
    r_max_f_ = 1.0 / std::sqrt(static_cast<double>(graph_.num_edges()) * c);
  } else {
    r_max_f_ = options_.r_max_f;
  }
}

std::vector<Score> TopPpr::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  Timer total;
  last_backward_pushes_ = 0;

  // Stage 1 (filter): forward push + walks, as in FORA but tuned to the
  // top-K resolution (delta = 1/K).
  forward_state_.Reset();
  forward_state_.SetResidue(source, 1.0);
  const NodeId seeds[] = {source};
  RunForwardSearch(graph_, config_, source, r_max_f_, seeds,
                   /*push_seeds_unconditionally=*/false, forward_state_);

  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (NodeId v : forward_state_.touched()) {
    scores[v] = forward_state_.reserve(v);
  }
  Rng query_rng = rng_.Fork(source);
  RunRemedy(graph_, config_, source, forward_state_, query_rng, scores);

  // Stage 2 (refine): backward pushes from the candidates straddling the
  // rank-K boundary; their scores decide top-K membership. When K >= n
  // every node is trivially in the top-K — there is no (K+1)-th competitor
  // and nothing to resolve, so the refinement stage is skipped.
  const std::size_t k = options_.top_k;
  if (k >= graph_.num_nodes()) {
    last_top_k_ = TopKIndices(scores, k);
    return scores;
  }
  const std::size_t width = options_.boundary_width;
  const std::size_t lo = k > width ? k - width : 0;
  const std::size_t hi = std::min(scores.size(), k + width);
  std::vector<NodeId> ranked = TopKIndices(scores, hi);
  RESACC_CHECK(!ranked.empty());
  const Score kth_score = scores[ranked[std::min(k, ranked.size()) - 1]];
  const Score r_max_b = std::max(
      options_.backward_threshold_factor * std::max(kth_score, config_.delta),
      1e-12);

  for (std::size_t rank = lo; rank < hi; ++rank) {
    if (options_.time_budget_seconds > 0.0 &&
        total.ElapsedSeconds() >= options_.time_budget_seconds) {
      break;
    }
    const NodeId target = ranked[rank];
    backward_state_.Reset();
    const PushStats stats =
        RunBackwardSearch(graph_, config_, target, r_max_b, backward_state_);
    last_backward_pushes_ += stats.push_operations;

    // pi(s, target) = reserve_b(s) + sum_v pi(s, v) * residue_b(v), with
    // pi(s, v) taken from the stage-1 estimates.
    Score refined = backward_state_.reserve(source);
    for (NodeId v : backward_state_.touched()) {
      const Score residue = backward_state_.residue(v);
      if (residue > 0.0) refined += scores[v] * residue;
    }
    scores[target] = refined;
  }

  last_top_k_ = TopKIndices(scores, k);
  return scores;
}

}  // namespace resacc

#ifndef RESACC_ALGO_TPA_H_
#define RESACC_ALGO_TPA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"

namespace resacc {

struct TpaOptions {
  // Hops of exact cumulative power iteration in the query phase (the
  // "family + neighbor" near field); beyond it the walk-mass tail is
  // approximated by the PageRank index. More hops = slower + more accurate.
  std::uint32_t near_hops = 15;
  // Convergence threshold of the offline PageRank computation.
  double pagerank_tolerance = 1e-12;
  std::size_t memory_budget_bytes = 0;  // 0 = unlimited
};

// TPA (Yoon et al. [31], simplified — see DESIGN.md "Baseline fidelity"):
// an index-oriented iterative method. Offline it computes the global
// PageRank vector; online it runs `near_hops` rounds of cumulative power
// iteration from the source (exact near-field mass) and assigns the
// remaining (1-alpha)^near_hops tail mass proportionally to PageRank —
// the paper's "estimate RWR of far nodes by their PageRank scores". The
// additive tail error is what degrades TPA's NDCG on large graphs
// (Fig. 5).
class Tpa : public IndexedSsrwrAlgorithm {
 public:
  Tpa(const Graph& graph, const RwrConfig& config,
      const TpaOptions& options = {});

  const std::string& name() const override { return name_; }

  Status BuildIndex() override;
  bool IndexReady() const override { return index_ready_; }
  std::size_t IndexBytes() const override;

  std::vector<Score> Query(NodeId source) override;

  const std::vector<Score>& pagerank() const { return pagerank_; }

 private:
  const Graph& graph_;
  RwrConfig config_;
  TpaOptions options_;
  std::string name_;
  bool index_ready_ = false;
  std::vector<Score> pagerank_;
};

}  // namespace resacc

#endif  // RESACC_ALGO_TPA_H_

#include "resacc/algo/tpa.h"

#include <algorithm>

#include "resacc/util/check.h"

namespace resacc {

Tpa::Tpa(const Graph& graph, const RwrConfig& config, const TpaOptions& options)
    : graph_(graph), config_(config), options_(options), name_("TPA") {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(options_.near_hops >= 1);
}

Status Tpa::BuildIndex() {
  index_ready_ = false;
  const NodeId n = graph_.num_nodes();
  const std::size_t projected = static_cast<std::size_t>(n) * sizeof(Score);
  if (options_.memory_budget_bytes > 0 &&
      projected > options_.memory_budget_bytes) {
    return Status::ResourceExhausted("TPA PageRank index exceeds budget");
  }

  // Global PageRank with uniform restart, same alpha and dangling policy
  // flavour as the queries (dangling mass respread uniformly offline —
  // there is no per-query source here).
  const double alpha = config_.alpha;
  std::vector<Score> rank(n, 1.0 / static_cast<double>(n));
  std::vector<Score> next(n, 0.0);
  for (int iteration = 0; iteration < 1000; ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    Score dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const auto neighbors = graph_.OutNeighbors(u);
      if (neighbors.empty()) {
        dangling_mass += rank[u];
        continue;
      }
      const Score share = (1.0 - alpha) * rank[u] /
                          static_cast<Score>(neighbors.size());
      for (NodeId v : neighbors) next[v] += share;
    }
    const Score base = alpha / static_cast<Score>(n) +
                       (1.0 - alpha) * dangling_mass /
                           static_cast<Score>(n);
    Score change = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      // alpha * (restart mass) is distributed uniformly; the overall
      // scoring below renormalizes, so the uniform base folds both terms.
      const Score updated = base + next[v];
      change += std::abs(updated - rank[v]);
      rank[v] = updated;
    }
    if (change < options_.pagerank_tolerance) break;
  }

  pagerank_ = std::move(rank);
  index_ready_ = true;
  return Status::Ok();
}

std::size_t Tpa::IndexBytes() const {
  return pagerank_.size() * sizeof(Score);
}

std::vector<Score> Tpa::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_CHECK_MSG(index_ready_, "call BuildIndex() first");
  const NodeId n = graph_.num_nodes();
  const double alpha = config_.alpha;

  // Near field: cumulative power iteration for near_hops rounds — the
  // exact termination mass of walks up to that length.
  std::vector<Score> scores(n, 0.0);
  std::vector<Score> alive(n, 0.0);
  std::vector<Score> next(n, 0.0);
  alive[source] = 1.0;
  Score alive_sum = 1.0;
  for (std::uint32_t hop = 0; hop < options_.near_hops && alive_sum > 0.0;
       ++hop) {
    std::fill(next.begin(), next.end(), 0.0);
    Score next_sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const Score mass = alive[u];
      if (mass == 0.0) continue;
      const auto neighbors = graph_.OutNeighbors(u);
      if (neighbors.empty()) {
        if (config_.dangling == DanglingPolicy::kAbsorb) {
          scores[u] += mass;
        } else {
          scores[u] += alpha * mass;
          next[source] += (1.0 - alpha) * mass;
          next_sum += (1.0 - alpha) * mass;
        }
        continue;
      }
      scores[u] += alpha * mass;
      const Score share =
          (1.0 - alpha) * mass / static_cast<Score>(neighbors.size());
      for (NodeId v : neighbors) next[v] += share;
      next_sum += (1.0 - alpha) * mass;
    }
    alive.swap(next);
    alive_sum = next_sum;
  }

  // Far field: the remaining alive mass terminates somewhere; approximate
  // its distribution by global PageRank (TPA's stranger-phase idea).
  if (alive_sum > 0.0) {
    Score pagerank_sum = 0.0;
    for (Score p : pagerank_) pagerank_sum += p;
    const Score scale = alive_sum / pagerank_sum;
    for (NodeId v = 0; v < n; ++v) scores[v] += scale * pagerank_[v];
  }
  return scores;
}

}  // namespace resacc

#include "resacc/algo/power.h"

#include "resacc/util/check.h"

namespace resacc {

PowerIteration::PowerIteration(const Graph& graph, const RwrConfig& config,
                               double tolerance,
                               std::uint32_t max_iterations)
    : graph_(graph),
      config_(config),
      tolerance_(tolerance),
      max_iterations_(max_iterations),
      name_("Power") {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(tolerance_ > 0.0);
}

std::vector<Score> PowerIteration::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  const NodeId n = graph_.num_nodes();
  const double alpha = config_.alpha;

  std::vector<Score> scores(n, 0.0);
  std::vector<Score> alive(n, 0.0);
  std::vector<Score> next(n, 0.0);
  alive[source] = 1.0;
  Score alive_sum = 1.0;

  std::uint32_t iteration = 0;
  for (; iteration < max_iterations_ && alive_sum > tolerance_; ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    Score next_sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const Score mass = alive[u];
      if (mass == 0.0) continue;
      const auto neighbors = graph_.OutNeighbors(u);
      if (neighbors.empty()) {
        if (config_.dangling == DanglingPolicy::kAbsorb) {
          // Walk stuck at a sink terminates there with probability 1.
          scores[u] += mass;
        } else {
          scores[u] += alpha * mass;
          const Score fly = (1.0 - alpha) * mass;
          next[source] += fly;
          next_sum += fly;
        }
        continue;
      }
      scores[u] += alpha * mass;
      const Score share =
          (1.0 - alpha) * mass / static_cast<Score>(neighbors.size());
      for (NodeId v : neighbors) next[v] += share;
      next_sum += (1.0 - alpha) * mass;
    }
    alive.swap(next);
    alive_sum = next_sum;
  }

  // Converged-by-construction: the leftover alive mass (< tolerance) is an
  // additive error; distribute it by termination so sum(scores) stays 1.
  for (NodeId u = 0; u < n; ++u) scores[u] += alive[u];

  last_iterations_ = iteration;
  return scores;
}

}  // namespace resacc

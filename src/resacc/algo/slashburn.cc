#include "resacc/algo/slashburn.h"

#include <algorithm>
#include <deque>

#include "resacc/util/check.h"

namespace resacc {
namespace {

// Undirected degree of `v` within the `alive` subset.
std::size_t AliveDegree(const Graph& graph, const std::vector<char>& alive,
                        NodeId v) {
  std::size_t degree = 0;
  for (NodeId u : graph.OutNeighbors(v)) degree += alive[u] ? 1 : 0;
  for (NodeId u : graph.InNeighbors(v)) degree += alive[u] ? 1 : 0;
  return degree;
}

// Connected components (undirected view) of the alive subset restricted to
// `nodes`.
std::vector<std::vector<NodeId>> AliveComponents(
    const Graph& graph, const std::vector<char>& alive,
    const std::vector<NodeId>& nodes) {
  std::vector<std::vector<NodeId>> components;
  std::vector<char> visited(graph.num_nodes(), 0);
  for (NodeId start : nodes) {
    if (!alive[start] || visited[start]) continue;
    std::vector<NodeId> component;
    std::deque<NodeId> queue{start};
    visited[start] = 1;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      component.push_back(u);
      auto expand = [&](NodeId w) {
        if (alive[w] && !visited[w]) {
          visited[w] = 1;
          queue.push_back(w);
        }
      };
      for (NodeId w : graph.OutNeighbors(u)) expand(w);
      for (NodeId w : graph.InNeighbors(u)) expand(w);
    }
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace

SlashBurnResult RunSlashBurn(const Graph& graph, NodeId hubs_per_iteration,
                             NodeId max_block_size) {
  RESACC_CHECK(hubs_per_iteration >= 1);
  RESACC_CHECK(max_block_size >= 1);
  SlashBurnResult result;

  std::vector<char> alive(graph.num_nodes(), 1);
  std::vector<NodeId> all_nodes(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) all_nodes[v] = v;

  // Work stack of node sets still too large to be spoke blocks.
  std::vector<std::vector<NodeId>> work;
  work.push_back(std::move(all_nodes));

  while (!work.empty()) {
    std::vector<NodeId> nodes = std::move(work.back());
    work.pop_back();
    if (nodes.size() <= max_block_size) {
      if (!nodes.empty()) result.spokes.push_back(std::move(nodes));
      continue;
    }

    // Slash: extract the top-degree nodes of this set as hubs. Degrees are
    // computed once per set (not per comparison).
    std::vector<std::pair<std::size_t, NodeId>> by_degree;
    by_degree.reserve(nodes.size());
    for (NodeId v : nodes) {
      by_degree.emplace_back(AliveDegree(graph, alive, v), v);
    }
    const std::size_t hub_count =
        std::min<std::size_t>(hubs_per_iteration, by_degree.size());
    std::partial_sort(by_degree.begin(),
                      by_degree.begin() + static_cast<long>(hub_count),
                      by_degree.end(), [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    for (std::size_t i = 0; i < hub_count; ++i) {
      const NodeId hub = by_degree[i].second;
      alive[hub] = 0;
      result.hubs.push_back(hub);
    }

    // Burn: components of the remainder become either spoke blocks or new
    // work items (when still above the cap).
    for (auto& component : AliveComponents(graph, alive, nodes)) {
      if (component.size() <= max_block_size) {
        result.spokes.push_back(std::move(component));
      } else {
        work.push_back(std::move(component));
      }
    }
  }
  return result;
}

}  // namespace resacc

#include "resacc/eval/sources.h"

#include <algorithm>
#include <unordered_set>

#include "resacc/util/check.h"
#include "resacc/util/rng.h"

namespace resacc {

std::vector<NodeId> PickUniformSources(const Graph& graph, std::size_t count,
                                       std::uint64_t seed) {
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.OutDegree(v) > 0) eligible.push_back(v);
  }
  RESACC_CHECK(!eligible.empty());
  count = std::min(count, eligible.size());

  Rng rng(seed);
  // Partial Fisher-Yates over the eligible pool.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.NextBounded(eligible.size() - i);
    std::swap(eligible[i], eligible[j]);
  }
  eligible.resize(count);
  return eligible;
}

std::vector<NodeId> PickTopOutDegreeSources(const Graph& graph,
                                            std::size_t count) {
  std::vector<NodeId> nodes = graph.NodesByOutDegreeDesc();
  nodes.resize(std::min(count, nodes.size()));
  return nodes;
}

}  // namespace resacc

#ifndef RESACC_EVAL_COMMUNITY_METRICS_H_
#define RESACC_EVAL_COMMUNITY_METRICS_H_

#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Community quality metrics (Appendix L definitions). The community graphs
// in the experiments are symmetrized, so edge counts use the out-adjacency
// (each undirected edge appears once per direction).

// cut(C): number of directed edges leaving C (one endpoint in, one out).
std::size_t CommunityCut(const Graph& graph, const std::vector<NodeId>& community);

// links(C, V): sum of degrees of C's nodes (every edge incident to C).
std::size_t CommunityVolume(const Graph& graph,
                            const std::vector<NodeId>& community);

// ncut(C) = cut(C) / links(C, V).
double NormalizedCut(const Graph& graph, const std::vector<NodeId>& community);

// cond(C) = cut(C) / min(links(C, V), links(V-C, V)).
double Conductance(const Graph& graph, const std::vector<NodeId>& community);

// Averages over a set of communities (ANC / AC of Tables V-VI).
double AverageNormalizedCut(const Graph& graph,
                            const std::vector<std::vector<NodeId>>& communities);
double AverageConductance(const Graph& graph,
                          const std::vector<std::vector<NodeId>>& communities);

}  // namespace resacc

#endif  // RESACC_EVAL_COMMUNITY_METRICS_H_

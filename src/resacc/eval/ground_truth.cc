#include "resacc/eval/ground_truth.h"

namespace resacc {

GroundTruthCache::GroundTruthCache(const Graph& graph, const RwrConfig& config,
                                   double tolerance)
    : power_(graph, config, tolerance) {}

const std::vector<Score>& GroundTruthCache::Get(NodeId source) {
  auto it = cache_.find(source);
  if (it == cache_.end()) {
    it = cache_.emplace(source, power_.Query(source)).first;
  }
  return it->second;
}

}  // namespace resacc

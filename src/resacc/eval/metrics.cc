#include "resacc/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "resacc/util/check.h"
#include "resacc/util/top_k.h"

namespace resacc {
namespace {

std::vector<Score> SortedDesc(const std::vector<Score>& values,
                              std::size_t prefix) {
  std::vector<Score> sorted = values;
  prefix = std::min(prefix, sorted.size());
  std::partial_sort(sorted.begin(), sorted.begin() + static_cast<long>(prefix),
                    sorted.end(), std::greater<Score>());
  sorted.resize(prefix);
  return sorted;
}

}  // namespace

double AbsErrorAtK(const std::vector<Score>& estimate,
                   const std::vector<Score>& exact, std::size_t k) {
  RESACC_CHECK(estimate.size() == exact.size());
  RESACC_CHECK(!estimate.empty());
  RESACC_CHECK(k >= 1);
  k = std::min(k, estimate.size());
  const std::vector<Score> est_sorted = SortedDesc(estimate, k);
  const std::vector<Score> exa_sorted = SortedDesc(exact, k);
  return std::fabs(est_sorted[k - 1] - exa_sorted[k - 1]);
}

double MeanAbsError(const std::vector<Score>& estimate,
                    const std::vector<Score>& exact) {
  RESACC_CHECK(estimate.size() == exact.size());
  RESACC_CHECK(!estimate.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    sum += std::fabs(estimate[i] - exact[i]);
  }
  return sum / static_cast<double>(estimate.size());
}

double MeanAbsErrorTopK(const std::vector<Score>& estimate,
                        const std::vector<Score>& exact, std::size_t k) {
  RESACC_CHECK(estimate.size() == exact.size());
  const std::vector<NodeId> top = TopKIndices(exact, k);
  RESACC_CHECK(!top.empty());
  double sum = 0.0;
  for (NodeId v : top) sum += std::fabs(estimate[v] - exact[v]);
  return sum / static_cast<double>(top.size());
}

double MaxRelativeErrorAboveDelta(const std::vector<Score>& estimate,
                                  const std::vector<Score>& exact,
                                  double delta) {
  RESACC_CHECK(estimate.size() == exact.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] > delta) {
      worst = std::max(worst, std::fabs(estimate[i] - exact[i]) / exact[i]);
    }
  }
  return worst;
}

double NdcgAtK(const std::vector<Score>& estimate,
               const std::vector<Score>& exact, std::size_t k) {
  RESACC_CHECK(estimate.size() == exact.size());
  const std::vector<NodeId> est_order = TopKIndices(estimate, k);
  const std::vector<NodeId> ideal_order = TopKIndices(exact, k);
  double dcg = 0.0;
  double ideal = 0.0;
  for (std::size_t i = 0; i < est_order.size(); ++i) {
    const double discount = 1.0 / std::log2(static_cast<double>(i) + 2.0);
    dcg += exact[est_order[i]] * discount;
    ideal += exact[ideal_order[i]] * discount;
  }
  return ideal > 0.0 ? dcg / ideal : 1.0;
}

double PrecisionAtK(const std::vector<Score>& estimate,
                    const std::vector<Score>& exact, std::size_t k) {
  RESACC_CHECK(estimate.size() == exact.size());
  const std::vector<NodeId> est_top = TopKIndices(estimate, k);
  const std::vector<NodeId> true_top = TopKIndices(exact, k);
  RESACC_CHECK(!true_top.empty());
  std::unordered_set<NodeId> truth(true_top.begin(), true_top.end());
  std::size_t hits = 0;
  for (NodeId v : est_top) hits += truth.count(v);
  return static_cast<double>(hits) / static_cast<double>(true_top.size());
}

}  // namespace resacc

#include "resacc/eval/community_metrics.h"

#include <vector>

#include "resacc/util/check.h"

namespace resacc {
namespace {

// Membership bitmap reused by cut computations.
std::vector<char> Membership(const Graph& graph,
                             const std::vector<NodeId>& community) {
  std::vector<char> in(graph.num_nodes(), 0);
  for (NodeId v : community) {
    RESACC_CHECK(v < graph.num_nodes());
    in[v] = 1;
  }
  return in;
}

}  // namespace

std::size_t CommunityCut(const Graph& graph,
                         const std::vector<NodeId>& community) {
  const std::vector<char> in = Membership(graph, community);
  std::size_t cut = 0;
  for (NodeId u : community) {
    for (NodeId v : graph.OutNeighbors(u)) cut += in[v] ? 0 : 1;
  }
  return cut;
}

std::size_t CommunityVolume(const Graph& graph,
                            const std::vector<NodeId>& community) {
  std::size_t volume = 0;
  for (NodeId u : community) volume += graph.OutDegree(u);
  return volume;
}

double NormalizedCut(const Graph& graph,
                     const std::vector<NodeId>& community) {
  const std::size_t volume = CommunityVolume(graph, community);
  if (volume == 0) return 0.0;
  return static_cast<double>(CommunityCut(graph, community)) /
         static_cast<double>(volume);
}

double Conductance(const Graph& graph, const std::vector<NodeId>& community) {
  const std::size_t volume = CommunityVolume(graph, community);
  const std::size_t complement_volume =
      static_cast<std::size_t>(graph.num_edges()) - volume +
      CommunityCut(graph, community);
  // links(V-C, V) counts edges incident to the complement: all edges not
  // fully inside C. For the symmetric graphs used here,
  // links(V-C, V) = m - links(C,V) + cut(C).
  const std::size_t denominator = std::min(volume, complement_volume);
  if (denominator == 0) return 0.0;
  return static_cast<double>(CommunityCut(graph, community)) /
         static_cast<double>(denominator);
}

double AverageNormalizedCut(
    const Graph& graph, const std::vector<std::vector<NodeId>>& communities) {
  if (communities.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& community : communities) {
    sum += NormalizedCut(graph, community);
  }
  return sum / static_cast<double>(communities.size());
}

double AverageConductance(
    const Graph& graph, const std::vector<std::vector<NodeId>>& communities) {
  if (communities.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& community : communities) {
    sum += Conductance(graph, community);
  }
  return sum / static_cast<double>(communities.size());
}

}  // namespace resacc

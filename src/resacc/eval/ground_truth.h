#ifndef RESACC_EVAL_GROUND_TRUTH_H_
#define RESACC_EVAL_GROUND_TRUTH_H_

#include <unordered_map>
#include <vector>

#include "resacc/algo/power.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"

namespace resacc {

// High-precision ground-truth RWR values, computed by power iteration
// (the paper's ground-truth generator) and memoized per source so one set
// of sources can feed many algorithms/metrics without recomputation.
class GroundTruthCache {
 public:
  // `tolerance` bounds the L1 mass unaccounted for; 1e-12 makes the
  // ground-truth error negligible against the epsilon = 0.5 regimes under
  // evaluation.
  GroundTruthCache(const Graph& graph, const RwrConfig& config,
                   double tolerance = 1e-12);

  const std::vector<Score>& Get(NodeId source);

  std::size_t size() const { return cache_.size(); }

 private:
  PowerIteration power_;
  std::unordered_map<NodeId, std::vector<Score>> cache_;
};

}  // namespace resacc

#endif  // RESACC_EVAL_GROUND_TRUTH_H_

#ifndef RESACC_EVAL_METRICS_H_
#define RESACC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "resacc/util/types.h"

namespace resacc {

// Accuracy metrics used throughout the paper's evaluation (Section VII-A
// cites absolute error and NDCG, following TopPPR [29]).

// |k-th largest estimated value - k-th largest exact value| (Fig. 4 plots
// this for k in {1, 10, ..., 1e5}). k is 1-based; k beyond n clamps.
double AbsErrorAtK(const std::vector<Score>& estimate,
                   const std::vector<Score>& exact, std::size_t k);

// Mean |estimate(v) - exact(v)| over all nodes ("average absolute error"
// of the distribution/boxplot figures).
double MeanAbsError(const std::vector<Score>& estimate,
                    const std::vector<Score>& exact);

// Mean |estimate - exact| over the true top-k nodes.
double MeanAbsErrorTopK(const std::vector<Score>& estimate,
                        const std::vector<Score>& exact, std::size_t k);

// Largest relative error among nodes whose exact value exceeds `delta` —
// directly checks the Definition 1 guarantee.
double MaxRelativeErrorAboveDelta(const std::vector<Score>& estimate,
                                  const std::vector<Score>& exact,
                                  double delta);

// NDCG@k with graded relevance = exact RWR value: rank nodes by the
// estimate, gain of rank-i node is its exact value, discount 1/log2(i+1);
// normalized by the ideal (exact-order) DCG. 1.0 = the estimate orders the
// top-k perfectly (Fig. 5).
double NdcgAtK(const std::vector<Score>& estimate,
               const std::vector<Score>& exact, std::size_t k);

// Fraction of the true top-k contained in the estimated top-k
// (TopPPR's precision metric).
double PrecisionAtK(const std::vector<Score>& estimate,
                    const std::vector<Score>& exact, std::size_t k);

}  // namespace resacc

#endif  // RESACC_EVAL_METRICS_H_

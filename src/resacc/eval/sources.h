#ifndef RESACC_EVAL_SOURCES_H_
#define RESACC_EVAL_SOURCES_H_

#include <cstdint>
#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Query-node selection for the experiments.

// `count` distinct nodes uniformly at random (the paper's default: "50
// source nodes chosen uniformly at random"). Only nodes with at least one
// out-edge are eligible, so every algorithm has work to do.
std::vector<NodeId> PickUniformSources(const Graph& graph, std::size_t count,
                                       std::uint64_t seed);

// The `count` nodes with the largest out-degrees (Appendix C's "hub"
// query-node experiment).
std::vector<NodeId> PickTopOutDegreeSources(const Graph& graph,
                                            std::size_t count);

}  // namespace resacc

#endif  // RESACC_EVAL_SOURCES_H_

#include "resacc/serve/workload.h"

#include <algorithm>
#include <cmath>

#include "resacc/util/check.h"

namespace resacc {

ZipfianSources::ZipfianSources(NodeId num_nodes, double theta,
                               std::uint64_t seed)
    : theta_(theta) {
  RESACC_CHECK(num_nodes >= 1);
  RESACC_CHECK(theta >= 0.0);

  cdf_.resize(num_nodes);
  double total = 0.0;
  for (NodeId r = 0; r < num_nodes; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -theta);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;

  permutation_.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) permutation_[v] = v;
  Rng rng(seed);
  // Fisher-Yates with the library Rng, so the rank->node mapping is stable
  // across standard-library implementations.
  for (NodeId i = num_nodes; i > 1; --i) {
    std::swap(permutation_[i - 1], permutation_[rng.NextBounded32(i)]);
  }
}

NodeId ZipfianSources::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t rank =
      it == cdf_.end() ? cdf_.size() - 1
                       : static_cast<std::size_t>(it - cdf_.begin());
  return permutation_[rank];
}

std::vector<NodeId> ZipfianSources::Sample(std::size_t count,
                                           Rng& rng) const {
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(Next(rng));
  return out;
}

}  // namespace resacc

#ifndef RESACC_SERVE_RESULT_CACHE_H_
#define RESACC_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "resacc/core/resacc_solver.h"
#include "resacc/core/rwr_config.h"
#include "resacc/util/types.h"

namespace resacc {

// Cache key: the query source plus a hash of everything else that
// determines the answer (RwrConfig + ResAccOptions, including the seed —
// the solver is deterministic given those). Two services with different
// configurations can therefore share one cache without cross-talk.
struct CacheKey {
  std::uint64_t config_hash = 0;
  NodeId source = 0;

  bool operator==(const CacheKey& other) const {
    return config_hash == other.config_hash && source == other.source;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    std::uint64_t h = key.config_hash ^
                      (static_cast<std::uint64_t>(key.source) + 1) *
                          0x9e3779b97f4a7c15ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

// FNV-1a over the numeric fields of the query configuration; the cache key
// half that makes cached vectors safe to reuse across service restarts.
std::uint64_t HashQueryConfig(const RwrConfig& config,
                              const ResAccOptions& options);

// Sharded LRU cache of full RWR score vectors under a global byte budget.
//
// Values are shared immutable vectors: a hit hands out the same
// shared_ptr the computing worker inserted, so eviction never invalidates
// a response a client still holds. Sharding (key-hash modulo) keeps the
// LRU mutex off the serving hot path's critical section — each shard has
// its own lock and an equal slice of the byte budget.
//
// Thread-safe. Byte accounting counts the score payload only (n *
// sizeof(Score) per entry); an entry larger than a shard's budget is
// simply not cached.
class ResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<Score>>;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  // max_bytes == 0 disables caching entirely (Lookup always misses).
  ResultCache(std::size_t max_bytes, std::size_t num_shards);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // A Lookup hit plus how long ago the entry was inserted — the serving
  // layer's staleness signal (entries are never expired by the cache
  // itself; the caller decides what "too old" means).
  struct AgedValue {
    Value value;  // nullptr on miss
    double age_seconds = 0.0;
  };

  // Returns the cached vector (marking the entry most-recently-used) or
  // nullptr on miss.
  Value Lookup(const CacheKey& key) { return LookupWithAge(key).value; }

  // Lookup variant reporting the entry's age.
  AgedValue LookupWithAge(const CacheKey& key);

  // Inserts or refreshes `value`, evicting LRU entries as needed to stay
  // within the shard's byte budget.
  void Insert(const CacheKey& key, Value value);

  void Clear();

  Counters counters() const;

  std::size_t max_bytes() const { return max_bytes_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    Value value;
    std::size_t bytes = 0;
    std::chrono::steady_clock::time_point inserted;
  };
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[CacheKeyHash()(key) % shards_.size()];
  }

  std::size_t max_bytes_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace resacc

#endif  // RESACC_SERVE_RESULT_CACHE_H_

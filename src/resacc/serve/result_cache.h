#ifndef RESACC_SERVE_RESULT_CACHE_H_
#define RESACC_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "resacc/core/resacc_solver.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/topk.h"
#include "resacc/util/types.h"

namespace resacc {

// Cache key: the query source plus a hash of everything else that
// determines the answer (RwrConfig + ResAccOptions, including the seed —
// the solver is deterministic given those). Two services with different
// configurations can therefore share one cache without cross-talk.
//
// `epoch` pins the entry to a graph content version (dynamic graphs:
// MutableGraphView::epoch()). A lookup at the live epoch can never return
// a vector computed against different edges — after a mutation batch the
// serving layer either promotes entries to the new epoch (when their
// influence bound stays within budget, see InvalidateEpoch) or leaves
// them behind to age out. Static deployments leave it 0. Compaction
// changes the *generation* (physical base), not the epoch (content), so
// cached entries survive compaction swaps untouched.
struct CacheKey {
  std::uint64_t config_hash = 0;
  NodeId source = 0;
  std::uint64_t epoch = 0;

  bool operator==(const CacheKey& other) const {
    return config_hash == other.config_hash && source == other.source &&
           epoch == other.epoch;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    std::uint64_t h = key.config_hash ^
                      (static_cast<std::uint64_t>(key.source) + 1) *
                          0x9e3779b97f4a7c15ULL;
    h ^= (key.epoch + 1) * 0xc2b2ae3d27d4eb4fULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

// FNV-1a over the numeric fields of the query configuration; the cache key
// half that makes cached vectors safe to reuse across service restarts.
std::uint64_t HashQueryConfig(const RwrConfig& config,
                              const ResAccOptions& options);

// Sharded LRU cache of RWR results under a global byte budget. An entry
// holds EITHER a full score vector OR a TopKResult (never both): Insert
// of a full vector upgrades a top-k entry in place, InsertTopK never
// downgrades a full one (see the k-superset rules on the methods).
//
// Values are shared immutable payloads: a hit hands out the same
// shared_ptr the computing worker inserted, so eviction never invalidates
// a response a client still holds. Sharding (key-hash modulo) keeps the
// LRU mutex off the serving hot path's critical section — each shard has
// its own lock and an equal slice of the byte budget.
//
// Thread-safe. Byte accounting counts the payload only (n * sizeof(Score)
// per full entry, entries * sizeof(TopKEntry) per top-k entry); an entry
// larger than a shard's budget is simply not cached.
class ResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<Score>>;
  using TopKValue = std::shared_ptr<const TopKResult>;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  // max_bytes == 0 disables caching entirely (Lookup always misses).
  ResultCache(std::size_t max_bytes, std::size_t num_shards);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // A Lookup hit plus how long ago the entry was inserted — the serving
  // layer's staleness signal (entries are never expired by the cache
  // itself; the caller decides what "too old" means).
  struct AgedValue {
    Value value;  // nullptr on miss
    double age_seconds = 0.0;
  };

  // Returns the cached vector (marking the entry most-recently-used) or
  // nullptr on miss. Top-k-only entries do NOT satisfy a full-vector
  // lookup (they will be upgraded by the recompute's Insert).
  Value Lookup(const CacheKey& key) { return LookupWithAge(key).value; }

  // Lookup variant reporting the entry's age.
  AgedValue LookupWithAge(const CacheKey& key);

  // A top-k probe hit: exactly one of `scores` (the entry held a full
  // vector — a superset of any top-k) or `topk` (a stored top-k' result
  // whose k-prefix satisfies the probe, TopKPrefixSatisfies) is set.
  struct AgedTopK {
    Value scores;
    TopKValue topk;
    double age_seconds = 0.0;
  };

  // Lookup for a top-k probe: hits a full entry outright, or a top-k'
  // entry with k' >= k whose prefix separates (certified) / any prefix
  // (approximate). A stored top-k' whose prefix cannot answer k counts as
  // a miss — the caller recomputes and InsertTopK refreshes.
  AgedTopK LookupTopK(const CacheKey& key, std::size_t k);

  // Inserts or refreshes `value`, evicting LRU entries as needed to stay
  // within the shard's byte budget. Replaces a top-k entry under the same
  // key (a full vector answers strictly more probes).
  void Insert(const CacheKey& key, Value value);

  // Inserts a top-k result. Skipped when the key already holds a full
  // vector (never downgrade) or a top-k' with k' > value->k (the stored
  // entry answers a superset of probes); otherwise inserts/refreshes.
  void InsertTopK(const CacheKey& key, TopKValue value);

  // Epoch transition for one configuration (dynamic graphs). Visits every
  // entry with {config_hash, epoch == old_epoch} and either
  //   * promotes it — rekeys to new_epoch in place — when the batch's
  //     influence on this entry (influence(scores), see
  //     dynamic/invalidation.h) keeps its cumulative drift within
  //     `drift_budget`, or
  //   * drops it (flush_all set, budget exceeded, or influence infinite).
  // Promotion accumulates: an entry's drift is the sum of the influence
  // bounds of every batch it survived, so the slackened guarantee holds
  // against the entry's *original* computation, not just the last epoch.
  // Entries are rekeyed within their shard (shard choice ignores the
  // epoch), so no cross-shard locking happens.
  struct InvalidationStats {
    std::size_t promoted = 0;
    std::size_t dropped = 0;
  };
  using InfluenceFn = std::function<double(const std::vector<Score>&)>;
  InvalidationStats InvalidateEpoch(std::uint64_t config_hash,
                                    std::uint64_t old_epoch,
                                    std::uint64_t new_epoch,
                                    double drift_budget,
                                    const InfluenceFn& influence,
                                    bool flush_all = false);

  void Clear();

  Counters counters() const;

  std::size_t max_bytes() const { return max_bytes_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    Value value;      // full entries: the score vector (else nullptr)
    TopKValue topk;   // top-k entries: the certified/approximate result
    std::size_t bytes = 0;
    std::chrono::steady_clock::time_point inserted;
    // Cumulative L1 perturbation bound accrued across the epoch
    // promotions this entry survived (InvalidateEpoch).
    double drift = 0.0;
  };
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  // Evicts from the LRU tail until the shard is back under budget (plus
  // the chaos eviction site). Caller holds the shard mutex.
  void EvictOverBudget(Shard& shard);

  // Shard choice deliberately ignores the epoch so InvalidateEpoch can
  // rekey an entry to a new epoch without moving it across shards.
  Shard& ShardFor(const CacheKey& key) {
    const CacheKey epochless{key.config_hash, key.source, 0};
    return *shards_[CacheKeyHash()(epochless) % shards_.size()];
  }

  std::size_t max_bytes_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace resacc

#endif  // RESACC_SERVE_RESULT_CACHE_H_

#include "resacc/serve/query_service.h"

#include <algorithm>
#include <thread>

#include "resacc/graph/dynamic/invalidation.h"
#include "resacc/util/check.h"
#include "resacc/util/fault_injection.h"
#include "resacc/util/top_k.h"

namespace resacc {
namespace {

std::future<QueryResponse> ReadyResponse(QueryResponse response) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Fair-queue lane weights: configured tenants in order plus the implicit
// default lane. Empty when no tenants are configured — the queue then
// builds its single weight-1 FIFO lane.
std::vector<double> LaneWeights(const ServeOptions& options) {
  std::vector<double> weights;
  if (!options.tenant_weights.empty()) {
    weights.reserve(options.tenant_weights.size() + 1);
    for (const auto& [name, weight] : options.tenant_weights) {
      (void)name;
      weights.push_back(weight);
    }
    weights.push_back(1.0);  // default lane for unknown/empty tenants
  }
  return weights;
}

}  // namespace

QueryService::QueryService(const Graph& graph, const RwrConfig& config,
                           const ServeOptions& options)
    : config_(config),
      options_(options),
      config_hash_(HashQueryConfig(config, options.solver) ^
                   options.cache_tag),
      // The initial state is a shallow view: the caller's graph must stay
      // alive while the service runs (the same contract the old const
      // Graph& member had). UpdateGraph replaces it with self-contained
      // snapshots.
      graph_state_(
          std::make_shared<const GraphState>(graph.ShallowView(), 0)),
      queue_(std::max<std::size_t>(options.queue_capacity, 1),
             LaneWeights(options)),
      cache_(options.cache_bytes,
             std::max<std::size_t>(options.cache_shards, 1)),
      owned_registry_(options.metrics_registry
                          ? nullptr
                          : std::make_unique<MetricsRegistry>()),
      registry_(options.metrics_registry ? *options.metrics_registry
                                         : *owned_registry_),
      submitted_(registry_.GetCounter(
          options_.metrics_prefix + "_submitted_total", "",
          "Requests accepted (cache hits and coalesced included).")),
      completed_(registry_.GetCounter(
          options_.metrics_prefix + "_completed_total", "",
          "Requests answered OK (any path: cache, coalesce, compute).")),
      rejected_(registry_.GetCounter(
          options_.metrics_prefix + "_rejected_total", "",
          "Requests refused with kResourceExhausted (queue full).")),
      expired_(registry_.GetCounter(
          options_.metrics_prefix + "_expired_total", "",
          "Requests expired with kDeadlineExceeded (queued or "
          "mid-compute, without allow_degraded).")),
      coalesced_(registry_.GetCounter(
          options_.metrics_prefix + "_coalesced_total", "",
          "Requests attached to an in-flight computation.")),
      computed_(registry_.GetCounter(
          options_.metrics_prefix + "_computed_total", "",
          "Solver runs (cache/coalesce suppress these).")),
      degraded_(registry_.GetCounter(
          options_.metrics_prefix + "_degraded_total", "",
          "Requests answered OK with a truncated result whose "
          "achieved epsilon is above the configured bound.")),
      cancelled_(registry_.GetCounter(
          options_.metrics_prefix + "_cancelled_total", "",
          "Requests resolved with kCancelled via Cancel(request_id).")),
      stale_served_(registry_.GetCounter(
          options_.metrics_prefix + "_stale_served_total", "",
          "Stale cache entries served because the queue was past the "
          "overload high-water mark.")),
      invalidated_(registry_.GetCounter(
          options_.metrics_prefix + "_invalidated_total", "",
          "Cache entries dropped by graph-mutation epoch transitions.")),
      cache_kept_(registry_.GetCounter(
          options_.metrics_prefix + "_cache_kept_total", "",
          "Cache entries promoted across a graph-mutation epoch "
          "transition (influence bound within the drift budget).")),
      batched_queries_(registry_.GetCounter(
          options_.metrics_prefix + "_batched_queries_total", "",
          "Queries answered by the batched multi-source solver "
          "(gathers of >= 2 live jobs).")),
      topk_queries_(registry_.GetCounter(
          options_.metrics_prefix + "_topk_queries_total", "",
          "Requests accepted in top-k mode (top_k > 0), any path.")),
      latency_(registry_.GetHistogram(
          options_.metrics_prefix + "_latency_seconds", "",
          "Submit-to-completion latency of OK responses.")),
      queue_wait_(registry_.GetHistogram(
          options_.metrics_prefix + "_queue_wait_seconds", "",
          "Time a dequeued job spent waiting for a worker.")),
      compute_hist_(registry_.GetHistogram(
          options_.metrics_prefix + "_compute_seconds", "",
          "Time a job spent inside the solver.")),
      batch_size_(registry_.GetHistogram(
          options_.metrics_prefix + "_batch_size", "",
          "Jobs gathered per batch on workers with batching enabled.")) {
  const std::string& prefix = options_.metrics_prefix;
  auto add_callback = [this](MetricKind kind, const std::string& name,
                             const std::string& help,
                             std::function<double()> fn) {
    callback_ids_.push_back(
        registry_.RegisterCallback(kind, name, "", help, std::move(fn)));
  };
  add_callback(MetricKind::kCounter, prefix + "_cache_hits_total",
               "Result-cache hits.",
               [this] { return static_cast<double>(cache_.counters().hits); });
  add_callback(
      MetricKind::kCounter, prefix + "_cache_misses_total",
      "Result-cache misses.",
      [this] { return static_cast<double>(cache_.counters().misses); });
  add_callback(
      MetricKind::kCounter, prefix + "_cache_evictions_total",
      "Result-cache evictions.",
      [this] { return static_cast<double>(cache_.counters().evictions); });
  add_callback(
      MetricKind::kGauge, prefix + "_cache_bytes",
      "Result-cache resident payload bytes.",
      [this] { return static_cast<double>(cache_.counters().bytes); });
  add_callback(
      MetricKind::kGauge, prefix + "_cache_entries",
      "Result-cache resident entries.",
      [this] { return static_cast<double>(cache_.counters().entries); });
  add_callback(MetricKind::kGauge, prefix + "_queue_depth",
               "Jobs waiting in the submission queue.",
               [this] { return static_cast<double>(queue_.size()); });
  add_callback(MetricKind::kGauge, prefix + "_queue_capacity",
               "Submission queue capacity.",
               [this] { return static_cast<double>(queue_.capacity()); });
  add_callback(MetricKind::kGauge, prefix + "_workers", "Worker threads.",
               [this] { return static_cast<double>(solvers_.size()); });
  add_callback(MetricKind::kGauge, prefix + "_uptime_seconds",
               "Seconds since service construction.",
               [this] { return uptime_.ElapsedSeconds(); });
  add_callback(MetricKind::kGauge, prefix + "_graph_epoch",
               "Content epoch of the graph version being served.",
               [this] { return static_cast<double>(graph_epoch()); });

  // Per-tenant labeled series, one set per lane (configured tenants plus
  // the implicit default). Registered eagerly so a scrape shows every
  // tenant from the start, zeroes included.
  if (!options_.tenant_weights.empty()) {
    tenant_names_.reserve(options_.tenant_weights.size() + 1);
    for (const auto& [name, weight] : options_.tenant_weights) {
      RESACC_CHECK(weight > 0.0);
      RESACC_CHECK(!name.empty() && name != "default");
      for (const std::string& seen : tenant_names_) {
        RESACC_CHECK(seen != name);  // duplicate tenant
      }
      tenant_names_.push_back(name);
    }
    tenant_names_.push_back("default");
    tenant_metrics_.reserve(tenant_names_.size());
    for (const std::string& name : tenant_names_) {
      const std::string label = "tenant=\"" + name + "\"";
      TenantMetrics tm;
      tm.submitted = &registry_.GetCounter(
          prefix + "_tenant_submitted_total", label,
          "Requests accepted, by tenant (cache hits and coalesced "
          "included).");
      tm.completed = &registry_.GetCounter(
          prefix + "_tenant_completed_total", label,
          "Requests answered OK, by tenant (any path).");
      tm.rejected = &registry_.GetCounter(
          prefix + "_tenant_rejected_total", label,
          "Requests refused with kResourceExhausted because the tenant's "
          "fair-queue lane was full.");
      tm.latency = &registry_.GetHistogram(
          prefix + "_tenant_latency_seconds", label,
          "Submit-to-completion latency of OK responses, by tenant.");
      tenant_metrics_.push_back(tm);
    }
  }

  const std::size_t workers = options.num_workers > 0
                                  ? options.num_workers
                                  : ThreadPool::DefaultThreads();
  solvers_.reserve(workers);
  batch_solvers_.reserve(workers);
  worker_states_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    solvers_.push_back(MakeSolver(*graph_state_));
    RESACC_CHECK(solvers_.back() != nullptr);
    batch_solvers_.push_back(BatchingEnabled() ? MakeBatchSolver(*graph_state_)
                                               : nullptr);
    worker_states_.push_back(graph_state_);
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    pool_->Submit([this, i] { WorkerLoop(i); });
  }
}

std::unique_ptr<SsrwrAlgorithm> QueryService::MakeSolver(
    const GraphState& state) const {
  if (options_.solver_factory) return options_.solver_factory(state.graph);
  return std::make_unique<ResAccSolver>(state.graph, config_,
                                        options_.solver);
}

std::unique_ptr<BatchSolver> QueryService::MakeBatchSolver(
    const GraphState& state) const {
  return std::make_unique<BatchSolver>(state.graph, config_,
                                       options_.solver);
}

std::size_t QueryService::LaneFor(const std::string& tenant) const {
  if (tenant_names_.empty()) return 0;
  if (!tenant.empty()) {
    for (std::size_t i = 0; i + 1 < tenant_names_.size(); ++i) {
      if (tenant_names_[i] == tenant) return i;
    }
  }
  return tenant_names_.size() - 1;  // implicit default lane
}

std::shared_ptr<const QueryService::GraphState> QueryService::CurrentState()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_state_;
}

Graph QueryService::graph() const {
  std::shared_ptr<const GraphState> state = CurrentState();
  return state->graph.ShallowView(
      std::shared_ptr<const void>(state, &state->graph));
}

std::uint64_t QueryService::graph_epoch() const {
  return CurrentState()->epoch;
}

void QueryService::UpdateGraph(Graph snapshot, const GraphDelta& delta) {
  std::uint64_t old_epoch = 0;
  std::uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old_epoch = graph_state_->epoch;
    // A compaction swap (empty delta) changes the physical base but not
    // the content: keep the epoch so cached entries stay addressable.
    new_epoch = delta.empty() ? old_epoch : delta.epoch;
    graph_state_ =
        std::make_shared<const GraphState>(std::move(snapshot), new_epoch);
  }
  if (new_epoch == old_epoch) return;

  const bool flush =
      options_.invalidation == ServeOptions::InvalidationMode::kFlushAll ||
      delta.nodes_added;
  ResultCache::InvalidationStats stats;
  if (flush) {
    stats = cache_.InvalidateEpoch(config_hash_, old_epoch, new_epoch,
                                   /*drift_budget=*/0.0, nullptr,
                                   /*flush_all=*/true);
  } else {
    // The budget keeps every promoted entry's score error under
    // slack * epsilon * delta — scores above the paper's delta threshold
    // still meet a (1 + slack) * epsilon relative bound.
    const double budget =
        options_.invalidation_slack * config_.epsilon * config_.delta;
    GraphDelta batch;
    batch.dirty_out = delta.dirty_out;
    const double alpha = config_.alpha;
    stats = cache_.InvalidateEpoch(
        config_hash_, old_epoch, new_epoch, budget,
        [&batch, alpha](const std::vector<Score>& scores) {
          return MutationInfluence(batch, alpha, scores);
        });
  }
  invalidated_.Increment(stats.dropped);
  cache_kept_.Increment(stats.promoted);
}

QueryService::~QueryService() {
  Stop();
  // The callbacks borrow cache_/queue_/uptime_; detach them before those
  // members die (a no-op consequence for an owned registry, essential for
  // a shared one that outlives this service).
  for (std::uint64_t id : callback_ids_) registry_.UnregisterCallback(id);
}

void QueryService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_.load(std::memory_order_relaxed)) return;
    stopped_.store(true, std::memory_order_relaxed);
  }
  // Close lets the workers drain everything already accepted — queued
  // requests complete normally rather than being dropped — then Pop
  // returns false and the worker loops exit.
  queue_.Close();
  pool_->Wait();
}

QueryResponse QueryService::MakeResponse(const Completion& completion,
                                         const Waiter& waiter) const {
  QueryResponse response;
  response.status = completion.status;
  response.coalesced = waiter.coalesced;
  response.degraded = completion.degraded;
  response.achieved_epsilon = completion.achieved_epsilon;
  response.uncorrected_mass = completion.uncorrected_mass;
  response.queue_wait_seconds = completion.queue_wait_seconds;
  response.compute_seconds = completion.compute_seconds;
  // Graceful degradation: a deadline/cancel that fired mid-compute left a
  // usable partial result (vector or top-k bracket); a waiter that opted
  // in takes it as OK + degraded instead of the error.
  if (!completion.status.ok() &&
      (completion.scores != nullptr || completion.topk != nullptr) &&
      waiter.allow_degraded) {
    response.status = Status::Ok();
    response.degraded = true;
  }
  if (response.status.ok() && completion.topk != nullptr) {
    // Top-k completion (computed, cached, or coalesced onto a top-k job).
    // A narrower waiter gets the k-prefix view when that prefix still
    // separates/brackets on its own; otherwise the wider stored result is
    // handed out as-is (documented on QueryResponse::topk).
    if (waiter.top_k > 0 && waiter.top_k < completion.topk->k &&
        TopKPrefixSatisfies(*completion.topk, waiter.top_k)) {
      response.topk = std::make_shared<const TopKResult>(
          TopKPrefix(*completion.topk, waiter.top_k));
    } else {
      response.topk = completion.topk;
    }
  } else if (response.status.ok() && completion.scores != nullptr) {
    if (waiter.top_k > 0) {
      // Top-k waiter bridged from a full vector (full-entry cache hit or
      // coalesced onto a full job): epsilon-bracketed approximate result.
      const double eps = completion.achieved_epsilon > 0.0
                             ? completion.achieved_epsilon
                             : config_.epsilon;
      auto bridged = std::make_shared<TopKResult>(
          MakeApproximateTopK(*completion.scores, waiter.top_k, eps,
                              response.degraded,
                              completion.uncorrected_mass));
      bridged->status = response.status;
      response.topk = std::move(bridged);
    } else {
      response.scores = completion.scores;
    }
  }
  if (response.topk != nullptr) {
    response.top.reserve(response.topk->entries.size());
    for (const TopKEntry& entry : response.topk->entries) {
      response.top.emplace_back(entry.node, entry.estimate);
    }
  }
  response.latency_seconds = SecondsSince(waiter.submit_time);
  return response;
}

std::future<QueryResponse> QueryService::Submit(const QueryRequest& request) {
  const Clock::time_point t0 = Clock::now();
  const std::size_t lane = LaneFor(request.tenant);
  TenantMetrics* tenant =
      tenant_metrics_.empty() ? nullptr : &tenant_metrics_[lane];

  if (stopped_.load(std::memory_order_relaxed)) {
    QueryResponse response;
    response.status = Status::FailedPrecondition("QueryService is stopped");
    return ReadyResponse(std::move(response));
  }
  const std::shared_ptr<const GraphState> state = CurrentState();
  if (request.source >= state->graph.num_nodes()) {
    QueryResponse response;
    response.status = Status::InvalidArgument("source out of range");
    return ReadyResponse(std::move(response));
  }

  // The lookup is pinned to the current content epoch: after a mutation
  // batch, entries not promoted by UpdateGraph are unreachable here.
  // Top-k probes additionally hit a stored top-k' payload whose prefix
  // satisfies k (result_cache.h LookupTopK).
  const CacheKey key{config_hash_, request.source, state->epoch};
  ResultCache::AgedTopK hit;
  if (request.top_k > 0) {
    hit = cache_.LookupTopK(key, request.top_k);
  } else {
    const ResultCache::AgedValue full = cache_.LookupWithAge(key);
    hit.scores = full.value;
    hit.age_seconds = full.age_seconds;
  }
  if (hit.scores != nullptr || hit.topk != nullptr) {
    const bool fresh = options_.cache_ttl_seconds <= 0.0 ||
                       hit.age_seconds <= options_.cache_ttl_seconds;
    // Admission control: a stale entry is normally recomputed, but once
    // the queue passes the high-water mark a slightly-old answer now
    // beats a fresh one that would deepen the backlog.
    const bool overloaded =
        queue_.size() >= static_cast<std::size_t>(
                             options_.overload_high_water *
                             static_cast<double>(queue_.capacity()));
    if (fresh || (options_.serve_stale_under_overload && overloaded)) {
      Waiter waiter;
      waiter.top_k = request.top_k;
      waiter.submit_time = t0;
      Completion completion;
      completion.scores = hit.scores;
      completion.topk = hit.topk;
      QueryResponse response = MakeResponse(completion, waiter);
      response.cache_hit = true;
      response.stale = !fresh;
      submitted_.Increment();
      completed_.Increment();
      if (request.top_k > 0) topk_queries_.Increment();
      if (!fresh) stale_served_.Increment();
      latency_.Record(response.latency_seconds);
      if (tenant != nullptr) {
        tenant->submitted->Increment();
        tenant->completed->Increment();
        tenant->latency->Record(response.latency_seconds);
      }
      return ReadyResponse(std::move(response));
    }
    // Stale and no overload: fall through; the recompute refreshes the
    // entry.
  }

  Waiter waiter;
  waiter.top_k = request.top_k;
  waiter.submit_time = t0;
  waiter.request_id = request.request_id;
  waiter.allow_degraded = request.allow_degraded;
  waiter.lane = lane;
  std::future<QueryResponse> future = waiter.promise.get_future();

  const double deadline_seconds = request.deadline_seconds > 0.0
                                      ? request.deadline_seconds
                                      : options_.default_deadline_seconds;

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_.load(std::memory_order_relaxed)) {
    waiter.promise.set_value([&] {
      QueryResponse response;
      response.status =
          Status::FailedPrecondition("QueryService is stopped");
      response.latency_seconds = SecondsSince(t0);
      return response;
    }());
    return future;
  }

  if (options_.coalesce) {
    auto it = inflight_.find(request.source);
    if (it != inflight_.end()) {
      // Coalescing is epoch-checked: a job still queued (kEpochUnset)
      // will compute against the newest state at dequeue, and a job
      // computing at the current epoch answers this request exactly. A
      // job pinned to an older epoch must not absorb a post-mutation
      // request — fall through and schedule a fresh computation, which
      // replaces the in-flight entry below (FinalizeJob's identity check
      // keeps the old job from erasing it).
      //
      // It is also shape-checked: a full job answers any waiter, but a
      // top-k job produces no score vector, so a full request (or one
      // wanting a larger k) schedules a fresh computation the same way.
      const bool shape_ok =
          it->second->top_k == 0 ||
          (request.top_k > 0 && it->second->top_k >= request.top_k);
      const std::uint64_t compute_epoch =
          it->second->compute_epoch.load(std::memory_order_acquire);
      if (shape_ok && (compute_epoch == Job::kEpochUnset ||
                       compute_epoch == graph_state_->epoch)) {
        waiter.coalesced = true;
        if (waiter.request_id != 0) {
          by_request_id_[waiter.request_id] = it->second;
        }
        it->second->waiters.push_back(std::move(waiter));
        // A job still waiting in the queue now serves this tenant too: if
        // this tenant's lane would schedule it sooner (higher weight /
        // shorter backlog), move it there. Otherwise a hot source first
        // submitted by a backlogged low-weight tenant would drag every
        // coalesced high-weight request to the back of the slow lane —
        // exactly the priority inversion tenant_weights exists to prevent.
        if (compute_epoch == Job::kEpochUnset) {
          queue_.PromoteIfSooner(it->second, lane);
        }
        submitted_.Increment();
        coalesced_.Increment();
        if (request.top_k > 0) topk_queries_.Increment();
        if (tenant != nullptr) tenant->submitted->Increment();
        return future;
      }
    }
  }

  auto job = std::make_shared<Job>();
  job->source = request.source;
  job->top_k = request.top_k;
  job->enqueue_time = t0;
  if (deadline_seconds > 0.0) {
    // Armed on the token relative to submission, so the same deadline
    // covers queue wait and compute: the worker sees it at dequeue and the
    // solver polls it between phases/blocks.
    job->token.SetDeadlineAt(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(deadline_seconds)));
  }
  const std::uint64_t request_id = waiter.request_id;
  job->waiters.push_back(std::move(waiter));

  if (!queue_.TryPush(job, lane)) {
    rejected_.Increment();
    if (tenant != nullptr) tenant->rejected->Increment();
    QueryResponse response;
    response.status = Status::ResourceExhausted(
        "submission queue full (" +
        std::to_string(queue_.lane_capacity()) + " pending); retry later");
    response.latency_seconds = SecondsSince(t0);
    job->waiters.front().promise.set_value(std::move(response));
    return future;
  }
  if (options_.coalesce) inflight_[request.source] = job;
  if (request_id != 0) by_request_id_[request_id] = job;
  submitted_.Increment();
  if (request.top_k > 0) topk_queries_.Increment();
  if (tenant != nullptr) tenant->submitted->Increment();
  return future;
}

QueryResponse QueryService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

bool QueryService::Cancel(std::uint64_t request_id) {
  if (request_id == 0) return false;
  Waiter waiter;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_request_id_.find(request_id);
    if (it == by_request_id_.end()) return false;
    std::shared_ptr<Job> job = std::move(it->second);
    by_request_id_.erase(it);
    auto w = std::find_if(
        job->waiters.begin(), job->waiters.end(),
        [&](const Waiter& x) { return x.request_id == request_id; });
    // FinalizeJob erases the id under this lock before moving the
    // waiters out, so a registered id implies the waiter is still here.
    RESACC_CHECK(w != job->waiters.end());
    waiter = std::move(*w);
    job->waiters.erase(w);
    if (job->waiters.empty()) {
      // Nobody wants the answer anymore: trip the token so a running
      // solve unwinds at its next phase/block boundary, and retire the
      // in-flight entry so later Submits schedule a fresh computation
      // instead of coalescing onto a doomed job.
      job->token.Cancel();
      auto inf = inflight_.find(job->source);
      if (inf != inflight_.end() && inf->second == job) inflight_.erase(inf);
    }
  }
  cancelled_.Increment();
  QueryResponse response;
  response.status = Status::Cancelled("cancelled by caller");
  response.coalesced = waiter.coalesced;
  response.latency_seconds = SecondsSince(waiter.submit_time);
  waiter.promise.set_value(std::move(response));
  return true;
}

void QueryService::WorkerLoop(std::size_t worker_index) {
  const std::size_t max_batch =
      BatchingEnabled()
          ? std::min<std::size_t>(options_.max_batch, BatchSolver::kMaxLanes)
          : 1;
  std::vector<std::shared_ptr<Job>> jobs;
  std::vector<std::shared_ptr<Job>> live;
  std::vector<double> queue_waits;
  std::shared_ptr<Job> job;
  while (queue_.Pop(job)) {
    jobs.clear();
    jobs.push_back(std::move(job));
    if (max_batch > 1) {
      // Batch formation: drain whatever is already queued, then linger
      // for stragglers until the budget runs out. Lingering only ever
      // waits on an empty queue while holding a partial batch — a full
      // batch or an exhausted budget goes immediately.
      const Clock::time_point gather_deadline =
          Clock::now() + std::chrono::microseconds(options_.batch_linger_us);
      while (jobs.size() < max_batch) {
        std::shared_ptr<Job> extra;
        if (queue_.TryPop(extra)) {
          jobs.push_back(std::move(extra));
          continue;
        }
        const Clock::time_point now = Clock::now();
        if (options_.batch_linger_us == 0 || now >= gather_deadline ||
            !queue_.PopFor(extra, gather_deadline - now)) {
          break;
        }
        jobs.push_back(std::move(extra));
      }
      batch_size_.Record(static_cast<double>(jobs.size()));
    }

    // Catch up with graph updates: rebuild this worker's solvers when a
    // newer state was published. State identity (not epoch) is compared,
    // so a compaction swap also re-points the solvers at the folded base.
    std::shared_ptr<const GraphState> state = CurrentState();
    if (state != worker_states_[worker_index]) {
      solvers_[worker_index] = MakeSolver(*state);
      if (max_batch > 1) batch_solvers_[worker_index] = MakeBatchSolver(*state);
      worker_states_[worker_index] = std::move(state);
    }
    const std::uint64_t epoch = worker_states_[worker_index]->epoch;

    // Publish which epoch these jobs now compute against: from here on,
    // Submit must not coalesce a post-mutation request onto them (the
    // pinned state predates the mutation). Stamped before the hook so a
    // hook that parks the worker models a mid-compute stall faithfully.
    for (const std::shared_ptr<Job>& j : jobs) {
      j->compute_epoch.store(epoch, std::memory_order_release);
      if (options_.dequeue_hook) options_.dequeue_hook(j->source);
    }
    // Chaos site: a worker pausing between dequeue and compute (GC-style
    // hiccup). Must only add latency, never change any answer.
    if (RESACC_FAULT("serve.worker_stall")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    live.clear();
    queue_waits.clear();
    for (const std::shared_ptr<Job>& j : jobs) {
      const double queue_wait = SecondsSince(j->enqueue_time);
      queue_wait_.Record(queue_wait);
      if (j->token.ShouldStop()) {
        // Expired (or fully cancelled) while queued: resolve without
        // touching the solver. No scores exist, so even allow_degraded
        // waiters get the error.
        Completion completion;
        completion.queue_wait_seconds = queue_wait;
        completion.status = j->token.StopStatus();
        FinalizeJob(j, completion);
        continue;
      }
      live.push_back(j);
      queue_waits.push_back(queue_wait);
    }
    if (!live.empty()) ComputeJobs(worker_index, live, queue_waits, epoch);
  }
}

void QueryService::ComputeJobs(std::size_t worker_index,
                               const std::vector<std::shared_ptr<Job>>& live,
                               const std::vector<double>& queue_waits,
                               std::uint64_t epoch) {
  std::vector<ControlledQueryResult> results;
  std::vector<TopKResult> topk_results;
  Timer compute_timer;
  if (live.size() == 1) {
    const std::shared_ptr<Job>& j = live.front();
    QueryControl control;
    control.cancel = &j->token;
    if (j->top_k > 0) {
      topk_results.push_back(
          solvers_[worker_index]->QueryTopK(j->source, j->top_k, control));
      results.emplace_back();
    } else {
      results.push_back(
          solvers_[worker_index]->QueryControlled(j->source, control));
    }
  } else {
    // Two or more live jobs: one multi-source solve. Each lane carries
    // its own token, so a deadline or Cancel() detaches that lane alone;
    // every lane's result — full or top-k — is bit-identical to the
    // serial path it replaces (batch_solver.h's contract), so which path
    // a job took is unobservable in its answer.
    bool any_topk = false;
    std::vector<BatchLane> lanes;
    lanes.reserve(live.size());
    for (const std::shared_ptr<Job>& j : live) {
      lanes.push_back(BatchLane{j->source, &j->token});
      lanes.back().top_k = j->top_k;
      any_topk = any_topk || j->top_k > 0;
    }
    results = batch_solvers_[worker_index]->QueryBatch(
        lanes, any_topk ? &topk_results : nullptr);
    batched_queries_.Increment(live.size());
  }
  // The batch computes its lanes together, so the per-job compute time is
  // the gather's wall time — what each waiter actually experienced.
  const double compute_seconds = compute_timer.ElapsedSeconds();
  compute_hist_.Record(compute_seconds);

  for (std::size_t i = 0; i < live.size(); ++i) {
    computed_.Increment();
    Completion completion;
    completion.queue_wait_seconds = queue_waits[i];
    completion.compute_seconds = compute_seconds;
    // Only full-accuracy results enter the cache (both branches below): a
    // degraded result is honest for the waiter that accepted it, but
    // caching it would hand weaker answers to future requests that never
    // opted in (and break the bit-identity-with-a-fresh-solver contract).
    // Inserts go under the epoch the solver computed against. If the
    // graph moved on mid-compute, that is an old epoch current lookups
    // no longer use — the entry is stranded, never stale-served.
    if (live[i]->top_k > 0) {
      TopKResult& tk = topk_results[i];
      completion.status = tk.status;
      completion.degraded = tk.degraded;
      completion.achieved_epsilon = tk.achieved_epsilon;
      completion.uncorrected_mass = tk.uncorrected_mass;
      completion.topk =
          std::make_shared<const TopKResult>(std::move(tk));
      if (completion.status.ok() && !completion.degraded) {
        cache_.InsertTopK(CacheKey{config_hash_, live[i]->source, epoch},
                          completion.topk);
      }
    } else {
      ControlledQueryResult& result = results[i];
      completion.status = result.status;
      completion.scores = std::make_shared<const std::vector<Score>>(
          std::move(result.scores));
      completion.degraded = result.degraded;
      completion.achieved_epsilon = result.achieved_epsilon;
      completion.uncorrected_mass = result.uncorrected_mass;
      if (result.status.ok() && !result.degraded) {
        cache_.Insert(CacheKey{config_hash_, live[i]->source, epoch},
                      completion.scores);
      }
    }
    FinalizeJob(live[i], completion);
  }
}

void QueryService::FinalizeJob(const std::shared_ptr<Job>& job,
                               const Completion& completion) {
  std::vector<Waiter> waiters;
  {
    // Retire the in-flight entry before publishing: after this point an
    // identical Submit either hits the cache (insert precedes Finalize) or
    // schedules a fresh computation — never attaches to a finished job.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(job->source);
    if (it != inflight_.end() && it->second == job) inflight_.erase(it);
    for (const Waiter& waiter : job->waiters) {
      if (waiter.request_id == 0) continue;
      auto rit = by_request_id_.find(waiter.request_id);
      if (rit != by_request_id_.end() && rit->second == job) {
        by_request_id_.erase(rit);
      }
    }
    waiters = std::move(job->waiters);
  }
  for (Waiter& waiter : waiters) {
    QueryResponse response = MakeResponse(completion, waiter);
    if (response.status.ok()) {
      completed_.Increment();
      if (response.degraded) degraded_.Increment();
      latency_.Record(response.latency_seconds);
      if (!tenant_metrics_.empty()) {
        TenantMetrics& tenant = tenant_metrics_[waiter.lane];
        tenant.completed->Increment();
        tenant.latency->Record(response.latency_seconds);
      }
    } else if (response.status.code() == StatusCode::kCancelled) {
      cancelled_.Increment();
    } else {
      expired_.Increment();
    }
    waiter.promise.set_value(std::move(response));
  }
}

ServerStats QueryService::Snapshot() const {
  // A projection of the metrics registry: every number below is read from
  // (or is the state behind) a registered series, never a second copy.
  ServerStats stats;
  stats.submitted = submitted_.Value();
  stats.completed = completed_.Value();
  stats.rejected = rejected_.Value();
  stats.expired = expired_.Value();
  stats.coalesced = coalesced_.Value();
  stats.computed = computed_.Value();
  stats.degraded = degraded_.Value();
  stats.cancelled = cancelled_.Value();
  stats.stale_served = stale_served_.Value();

  const ResultCache::Counters cache = cache_.counters();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_bytes = cache.bytes;
  stats.cache_entries = cache.entries;

  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.num_workers = solvers_.size();

  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.completed) /
                        stats.uptime_seconds
                  : 0.0;
  stats.latency = latency_.TakeSnapshot();
  stats.queue_wait = queue_wait_.TakeSnapshot();
  stats.compute = compute_hist_.TakeSnapshot();
  return stats;
}

}  // namespace resacc

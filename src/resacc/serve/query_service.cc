#include "resacc/serve/query_service.h"

#include <algorithm>

#include "resacc/util/check.h"
#include "resacc/util/top_k.h"

namespace resacc {
namespace {

std::future<QueryResponse> ReadyResponse(QueryResponse response) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

QueryService::QueryService(const Graph& graph, const RwrConfig& config,
                           const ServeOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      config_hash_(HashQueryConfig(config, options.solver) ^
                   options.cache_tag),
      queue_(std::max<std::size_t>(options.queue_capacity, 1)),
      cache_(options.cache_bytes,
             std::max<std::size_t>(options.cache_shards, 1)),
      owned_registry_(options.metrics_registry
                          ? nullptr
                          : std::make_unique<MetricsRegistry>()),
      registry_(options.metrics_registry ? *options.metrics_registry
                                         : *owned_registry_),
      submitted_(registry_.GetCounter(
          options_.metrics_prefix + "_submitted_total", "",
          "Requests accepted (cache hits and coalesced included).")),
      completed_(registry_.GetCounter(
          options_.metrics_prefix + "_completed_total", "",
          "Requests answered OK (any path: cache, coalesce, compute).")),
      rejected_(registry_.GetCounter(
          options_.metrics_prefix + "_rejected_total", "",
          "Requests refused with kResourceExhausted (queue full).")),
      expired_(registry_.GetCounter(
          options_.metrics_prefix + "_expired_total", "",
          "Requests expired with kDeadlineExceeded while queued.")),
      coalesced_(registry_.GetCounter(
          options_.metrics_prefix + "_coalesced_total", "",
          "Requests attached to an in-flight computation.")),
      computed_(registry_.GetCounter(
          options_.metrics_prefix + "_computed_total", "",
          "Solver runs (cache/coalesce suppress these).")),
      latency_(registry_.GetHistogram(
          options_.metrics_prefix + "_latency_seconds", "",
          "Submit-to-completion latency of OK responses.")) {
  const std::string& prefix = options_.metrics_prefix;
  auto add_callback = [this](MetricKind kind, const std::string& name,
                             const std::string& help,
                             std::function<double()> fn) {
    callback_ids_.push_back(
        registry_.RegisterCallback(kind, name, "", help, std::move(fn)));
  };
  add_callback(MetricKind::kCounter, prefix + "_cache_hits_total",
               "Result-cache hits.",
               [this] { return static_cast<double>(cache_.counters().hits); });
  add_callback(
      MetricKind::kCounter, prefix + "_cache_misses_total",
      "Result-cache misses.",
      [this] { return static_cast<double>(cache_.counters().misses); });
  add_callback(
      MetricKind::kCounter, prefix + "_cache_evictions_total",
      "Result-cache evictions.",
      [this] { return static_cast<double>(cache_.counters().evictions); });
  add_callback(
      MetricKind::kGauge, prefix + "_cache_bytes",
      "Result-cache resident payload bytes.",
      [this] { return static_cast<double>(cache_.counters().bytes); });
  add_callback(
      MetricKind::kGauge, prefix + "_cache_entries",
      "Result-cache resident entries.",
      [this] { return static_cast<double>(cache_.counters().entries); });
  add_callback(MetricKind::kGauge, prefix + "_queue_depth",
               "Jobs waiting in the submission queue.",
               [this] { return static_cast<double>(queue_.size()); });
  add_callback(MetricKind::kGauge, prefix + "_queue_capacity",
               "Submission queue capacity.",
               [this] { return static_cast<double>(queue_.capacity()); });
  add_callback(MetricKind::kGauge, prefix + "_workers", "Worker threads.",
               [this] { return static_cast<double>(solvers_.size()); });
  add_callback(MetricKind::kGauge, prefix + "_uptime_seconds",
               "Seconds since service construction.",
               [this] { return uptime_.ElapsedSeconds(); });

  const std::size_t workers = options.num_workers > 0
                                  ? options.num_workers
                                  : ThreadPool::DefaultThreads();
  solvers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    solvers_.push_back(options_.solver_factory
                           ? options_.solver_factory()
                           : std::make_unique<ResAccSolver>(
                                 graph_, config_, options_.solver));
    RESACC_CHECK(solvers_.back() != nullptr);
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    pool_->Submit([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() {
  Stop();
  // The callbacks borrow cache_/queue_/uptime_; detach them before those
  // members die (a no-op consequence for an owned registry, essential for
  // a shared one that outlives this service).
  for (std::uint64_t id : callback_ids_) registry_.UnregisterCallback(id);
}

void QueryService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_.load(std::memory_order_relaxed)) return;
    stopped_.store(true, std::memory_order_relaxed);
  }
  // Close lets the workers drain everything already accepted — queued
  // requests complete normally rather than being dropped — then Pop
  // returns false and the worker loops exit.
  queue_.Close();
  pool_->Wait();
}

QueryResponse QueryService::MakeResponse(
    const std::shared_ptr<const std::vector<Score>>& scores,
    const Waiter& waiter, const Status& status) const {
  QueryResponse response;
  response.status = status;
  response.coalesced = waiter.coalesced;
  if (status.ok()) {
    response.scores = scores;
    if (waiter.top_k > 0) response.top = TopKPairs(*scores, waiter.top_k);
  }
  response.latency_seconds = SecondsSince(waiter.submit_time);
  return response;
}

std::future<QueryResponse> QueryService::Submit(const QueryRequest& request) {
  const Clock::time_point t0 = Clock::now();

  if (stopped_.load(std::memory_order_relaxed)) {
    QueryResponse response;
    response.status = Status::FailedPrecondition("QueryService is stopped");
    return ReadyResponse(std::move(response));
  }
  if (request.source >= graph_.num_nodes()) {
    QueryResponse response;
    response.status = Status::InvalidArgument("source out of range");
    return ReadyResponse(std::move(response));
  }

  const CacheKey key{config_hash_, request.source};
  if (ResultCache::Value hit = cache_.Lookup(key)) {
    Waiter waiter;
    waiter.top_k = request.top_k;
    waiter.submit_time = t0;
    QueryResponse response = MakeResponse(hit, waiter, Status::Ok());
    response.cache_hit = true;
    submitted_.Increment();
    completed_.Increment();
    latency_.Record(response.latency_seconds);
    return ReadyResponse(std::move(response));
  }

  Waiter waiter;
  waiter.top_k = request.top_k;
  waiter.submit_time = t0;
  std::future<QueryResponse> future = waiter.promise.get_future();

  const double deadline_seconds = request.deadline_seconds > 0.0
                                      ? request.deadline_seconds
                                      : options_.default_deadline_seconds;

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_.load(std::memory_order_relaxed)) {
    waiter.promise.set_value([&] {
      QueryResponse response;
      response.status =
          Status::FailedPrecondition("QueryService is stopped");
      response.latency_seconds = SecondsSince(t0);
      return response;
    }());
    return future;
  }

  if (options_.coalesce) {
    auto it = inflight_.find(request.source);
    if (it != inflight_.end()) {
      waiter.coalesced = true;
      it->second->waiters.push_back(std::move(waiter));
      submitted_.Increment();
      coalesced_.Increment();
      return future;
    }
  }

  auto job = std::make_shared<Job>();
  job->source = request.source;
  if (deadline_seconds > 0.0) {
    job->deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(deadline_seconds));
  }
  job->waiters.push_back(std::move(waiter));

  if (!queue_.TryPush(job)) {
    rejected_.Increment();
    QueryResponse response;
    response.status = Status::ResourceExhausted(
        "submission queue full (" + std::to_string(queue_.capacity()) +
        " pending); retry later");
    response.latency_seconds = SecondsSince(t0);
    job->waiters.front().promise.set_value(std::move(response));
    return future;
  }
  if (options_.coalesce) inflight_[request.source] = job;
  submitted_.Increment();
  return future;
}

QueryResponse QueryService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

void QueryService::WorkerLoop(std::size_t worker_index) {
  SsrwrAlgorithm& solver = *solvers_[worker_index];
  std::shared_ptr<Job> job;
  while (queue_.Pop(job)) {
    if (options_.dequeue_hook) options_.dequeue_hook(job->source);

    if (job->deadline != Clock::time_point::max() &&
        Clock::now() > job->deadline) {
      FinalizeJob(job, nullptr,
                  Status::DeadlineExceeded(
                      "request expired before a worker picked it up"));
      continue;
    }

    auto scores = std::make_shared<const std::vector<Score>>(
        solver.Query(job->source));
    computed_.Increment();
    cache_.Insert(CacheKey{config_hash_, job->source}, scores);
    FinalizeJob(job, std::move(scores), Status::Ok());
  }
}

void QueryService::FinalizeJob(
    const std::shared_ptr<Job>& job,
    std::shared_ptr<const std::vector<Score>> scores, const Status& status) {
  std::vector<Waiter> waiters;
  {
    // Retire the in-flight entry before publishing: after this point an
    // identical Submit either hits the cache (insert precedes Finalize) or
    // schedules a fresh computation — never attaches to a finished job.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(job->source);
    if (it != inflight_.end() && it->second == job) inflight_.erase(it);
    waiters = std::move(job->waiters);
  }
  for (Waiter& waiter : waiters) {
    QueryResponse response = MakeResponse(scores, waiter, status);
    if (status.ok()) {
      completed_.Increment();
      latency_.Record(response.latency_seconds);
    } else {
      expired_.Increment();
    }
    waiter.promise.set_value(std::move(response));
  }
}

ServerStats QueryService::Snapshot() const {
  // A projection of the metrics registry: every number below is read from
  // (or is the state behind) a registered series, never a second copy.
  ServerStats stats;
  stats.submitted = submitted_.Value();
  stats.completed = completed_.Value();
  stats.rejected = rejected_.Value();
  stats.expired = expired_.Value();
  stats.coalesced = coalesced_.Value();
  stats.computed = computed_.Value();

  const ResultCache::Counters cache = cache_.counters();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_bytes = cache.bytes;
  stats.cache_entries = cache.entries;

  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.num_workers = solvers_.size();

  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.completed) /
                        stats.uptime_seconds
                  : 0.0;
  stats.latency = latency_.TakeSnapshot();
  return stats;
}

}  // namespace resacc

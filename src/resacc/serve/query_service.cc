#include "resacc/serve/query_service.h"

#include <algorithm>

#include "resacc/util/check.h"
#include "resacc/util/top_k.h"

namespace resacc {
namespace {

std::future<QueryResponse> ReadyResponse(QueryResponse response) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

QueryService::QueryService(const Graph& graph, const RwrConfig& config,
                           const ServeOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      config_hash_(HashQueryConfig(config, options.solver) ^
                   options.cache_tag),
      queue_(std::max<std::size_t>(options.queue_capacity, 1)),
      cache_(options.cache_bytes,
             std::max<std::size_t>(options.cache_shards, 1)) {
  const std::size_t workers = options.num_workers > 0
                                  ? options.num_workers
                                  : ThreadPool::DefaultThreads();
  solvers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    solvers_.push_back(options_.solver_factory
                           ? options_.solver_factory()
                           : std::make_unique<ResAccSolver>(
                                 graph_, config_, options_.solver));
    RESACC_CHECK(solvers_.back() != nullptr);
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    pool_->Submit([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_.load(std::memory_order_relaxed)) return;
    stopped_.store(true, std::memory_order_relaxed);
  }
  // Close lets the workers drain everything already accepted — queued
  // requests complete normally rather than being dropped — then Pop
  // returns false and the worker loops exit.
  queue_.Close();
  pool_->Wait();
}

QueryResponse QueryService::MakeResponse(
    const std::shared_ptr<const std::vector<Score>>& scores,
    const Waiter& waiter, const Status& status) const {
  QueryResponse response;
  response.status = status;
  response.coalesced = waiter.coalesced;
  if (status.ok()) {
    response.scores = scores;
    if (waiter.top_k > 0) response.top = TopKPairs(*scores, waiter.top_k);
  }
  response.latency_seconds = SecondsSince(waiter.submit_time);
  return response;
}

std::future<QueryResponse> QueryService::Submit(const QueryRequest& request) {
  const Clock::time_point t0 = Clock::now();

  if (stopped_.load(std::memory_order_relaxed)) {
    QueryResponse response;
    response.status = Status::FailedPrecondition("QueryService is stopped");
    return ReadyResponse(std::move(response));
  }
  if (request.source >= graph_.num_nodes()) {
    QueryResponse response;
    response.status = Status::InvalidArgument("source out of range");
    return ReadyResponse(std::move(response));
  }

  const CacheKey key{config_hash_, request.source};
  if (ResultCache::Value hit = cache_.Lookup(key)) {
    Waiter waiter;
    waiter.top_k = request.top_k;
    waiter.submit_time = t0;
    QueryResponse response = MakeResponse(hit, waiter, Status::Ok());
    response.cache_hit = true;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    latency_.Record(response.latency_seconds);
    return ReadyResponse(std::move(response));
  }

  Waiter waiter;
  waiter.top_k = request.top_k;
  waiter.submit_time = t0;
  std::future<QueryResponse> future = waiter.promise.get_future();

  const double deadline_seconds = request.deadline_seconds > 0.0
                                      ? request.deadline_seconds
                                      : options_.default_deadline_seconds;

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_.load(std::memory_order_relaxed)) {
    waiter.promise.set_value([&] {
      QueryResponse response;
      response.status =
          Status::FailedPrecondition("QueryService is stopped");
      response.latency_seconds = SecondsSince(t0);
      return response;
    }());
    return future;
  }

  if (options_.coalesce) {
    auto it = inflight_.find(request.source);
    if (it != inflight_.end()) {
      waiter.coalesced = true;
      it->second->waiters.push_back(std::move(waiter));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      return future;
    }
  }

  auto job = std::make_shared<Job>();
  job->source = request.source;
  if (deadline_seconds > 0.0) {
    job->deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(deadline_seconds));
  }
  job->waiters.push_back(std::move(waiter));

  if (!queue_.TryPush(job)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    QueryResponse response;
    response.status = Status::ResourceExhausted(
        "submission queue full (" + std::to_string(queue_.capacity()) +
        " pending); retry later");
    response.latency_seconds = SecondsSince(t0);
    job->waiters.front().promise.set_value(std::move(response));
    return future;
  }
  if (options_.coalesce) inflight_[request.source] = job;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

QueryResponse QueryService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

void QueryService::WorkerLoop(std::size_t worker_index) {
  SsrwrAlgorithm& solver = *solvers_[worker_index];
  std::shared_ptr<Job> job;
  while (queue_.Pop(job)) {
    if (options_.dequeue_hook) options_.dequeue_hook(job->source);

    if (job->deadline != Clock::time_point::max() &&
        Clock::now() > job->deadline) {
      FinalizeJob(job, nullptr,
                  Status::DeadlineExceeded(
                      "request expired before a worker picked it up"));
      continue;
    }

    auto scores = std::make_shared<const std::vector<Score>>(
        solver.Query(job->source));
    computed_.fetch_add(1, std::memory_order_relaxed);
    cache_.Insert(CacheKey{config_hash_, job->source}, scores);
    FinalizeJob(job, std::move(scores), Status::Ok());
  }
}

void QueryService::FinalizeJob(
    const std::shared_ptr<Job>& job,
    std::shared_ptr<const std::vector<Score>> scores, const Status& status) {
  std::vector<Waiter> waiters;
  {
    // Retire the in-flight entry before publishing: after this point an
    // identical Submit either hits the cache (insert precedes Finalize) or
    // schedules a fresh computation — never attaches to a finished job.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(job->source);
    if (it != inflight_.end() && it->second == job) inflight_.erase(it);
    waiters = std::move(job->waiters);
  }
  for (Waiter& waiter : waiters) {
    QueryResponse response = MakeResponse(scores, waiter, status);
    if (status.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      latency_.Record(response.latency_seconds);
    } else {
      expired_.fetch_add(1, std::memory_order_relaxed);
    }
    waiter.promise.set_value(std::move(response));
  }
}

ServerStats QueryService::Snapshot() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.computed = computed_.load(std::memory_order_relaxed);

  const ResultCache::Counters cache = cache_.counters();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_bytes = cache.bytes;
  stats.cache_entries = cache.entries;

  stats.queue_depth = queue_.size();
  stats.queue_capacity = queue_.capacity();
  stats.num_workers = solvers_.size();

  stats.uptime_seconds = uptime_.ElapsedSeconds();
  stats.qps = stats.uptime_seconds > 0.0
                  ? static_cast<double>(stats.completed) /
                        stats.uptime_seconds
                  : 0.0;
  stats.latency = latency_.TakeSnapshot();
  return stats;
}

}  // namespace resacc

#ifndef RESACC_SERVE_QUERY_SERVICE_H_
#define RESACC_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "resacc/core/batch_solver.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/graph.h"
#include "resacc/serve/result_cache.h"
#include "resacc/serve/server_stats.h"
#include "resacc/util/fair_queue.h"
#include "resacc/util/cancellation.h"
#include "resacc/util/histogram.h"
#include "resacc/util/status.h"
#include "resacc/util/thread_pool.h"
#include "resacc/util/timer.h"
#include "resacc/util/types.h"

namespace resacc {

// Configuration of a QueryService instance.
struct ServeOptions {
  // Worker threads, each owning a private solver instance (the
  // parallel_msrwr pattern: solvers keep per-query workspaces and are not
  // thread-safe). 0 means ThreadPool::DefaultThreads().
  std::size_t num_workers = 0;

  // Capacity of the submission queue. A Submit that finds the queue full
  // fails fast with kResourceExhausted — backpressure is explicit, never a
  // silent drop or an unbounded buffer. With tenants configured (below)
  // the capacity applies per tenant lane, so one tenant's backlog never
  // consumes another's admission budget.
  std::size_t queue_capacity = 1024;

  // Multi-tenant QoS: named tenants with scheduling weights. When
  // non-empty, the submission queue becomes a weighted fair queue
  // (util/fair_queue.h): each tenant gets its own bounded lane, workers
  // dequeue in start-time-fair order, and under saturation tenant i's
  // share of solver time is weight_i / sum(weights) — a weight-4 tenant
  // sustains 4x a weight-1 tenant's throughput instead of whoever bursts
  // hardest winning. Requests whose QueryRequest::tenant is empty or
  // unknown ride an implicit "default" lane of weight 1. Each tenant
  // (including default) also gets labeled series on the registry:
  // `<prefix>_tenant_{submitted,completed,rejected}_total{tenant="x"}`
  // and `<prefix>_tenant_latency_seconds{tenant="x"}`. Names must be
  // unique and weights positive. Empty (the default) keeps the single
  // FIFO lane and registers no tenant series.
  std::vector<std::pair<std::string, double>> tenant_weights;

  // Byte budget of the result cache (score payload bytes); 0 disables
  // caching.
  std::size_t cache_bytes = static_cast<std::size_t>(64) << 20;
  std::size_t cache_shards = 8;

  // Single-flight: concurrent requests for a source already queued or
  // computing attach to that computation instead of enqueuing a duplicate.
  bool coalesce = true;

  // Batched solving (batch_solver.h): a worker that dequeues a job keeps
  // gathering queued jobs — up to `max_batch`, lingering at most
  // `batch_linger_us` microseconds for stragglers once the queue runs
  // dry — and solves them as one multi-source batch, amortizing each CSR
  // row read of the shared frontier rounds across every gathered source.
  // Every lane's result is bit-identical to the serial solver's, so
  // batching changes throughput and latency, never answers. 1 disables
  // batching (the default: lingering trades latency for throughput, an
  // opt-in). Values above BatchSolver::kMaxLanes are clamped; ignored
  // when solver_factory is set (batching is a ResAcc-pipeline
  // capability). A batch that ends up with a single live job takes the
  // ordinary serial path.
  std::size_t max_batch = 1;
  std::uint64_t batch_linger_us = 0;

  // Deadline applied to requests that do not set one; 0 means none. The
  // deadline is enforced end-to-end: a request whose deadline passes while
  // queued completes with kDeadlineExceeded without touching a worker, and
  // one that expires mid-compute stops the solver cooperatively at the
  // next phase/block boundary (util/cancellation.h) instead of blocking
  // its worker for the full solve.
  double default_deadline_seconds = 0.0;

  // Age at which a cached result counts as stale; 0 (default) means
  // entries never go stale. Fresh-enough entries are always served; stale
  // ones are recomputed — except under overload (below).
  double cache_ttl_seconds = 0.0;

  // Admission control: when the submission queue is at or past
  // `overload_high_water` x capacity and `serve_stale_under_overload` is
  // set, a stale cache entry is served (tagged QueryResponse::stale)
  // instead of deepening the backlog. Only meaningful with a TTL; without
  // one entries are never stale in the first place.
  double overload_high_water = 0.75;
  bool serve_stale_under_overload = true;

  // Solver knobs shared by every worker.
  ResAccOptions solver;

  // Optional solver factory for serving a non-ResAcc backend. Invoked
  // with the graph snapshot the solver must answer against — again after
  // every UpdateGraph, since workers rebuild their solver when the graph
  // changes. Every instance must be deterministic per source and
  // configured identically, or caching/coalescing would conflate
  // different answers; set cache_tag to a value identifying the backend +
  // its configuration.
  std::function<std::unique_ptr<SsrwrAlgorithm>(const Graph&)> solver_factory;
  std::uint64_t cache_tag = 0;

  // Cache policy applied by UpdateGraph when the graph content changes.
  //   kTargeted: per-entry influence bound (dynamic/invalidation.h) —
  //     entries whose cached walk mass never touches the mutated rows are
  //     promoted to the new epoch; the rest are dropped.
  //   kFlushAll: drop every entry of the old epoch (the baseline
  //     bench_micro's dynamic section compares against).
  enum class InvalidationMode { kTargeted, kFlushAll };
  InvalidationMode invalidation = InvalidationMode::kTargeted;
  // Drift budget for promotion, as a fraction of epsilon * delta: an
  // entry survives while its cumulative L1 perturbation bound stays under
  // invalidation_slack * epsilon * delta, i.e. every score above the
  // paper's delta threshold still meets a (1 + slack) * epsilon relative
  // bound (docs/API.md "Dynamic graphs: mutations and invalidation").
  double invalidation_slack = 0.5;

  // Observability/test hook, invoked on the worker thread right after a
  // job is dequeued (before the deadline check and the solver call).
  std::function<void(NodeId)> dequeue_hook;

  // Registry the service's metrics live in. Null (the default) gives the
  // service a private registry, so counts are exactly this instance's —
  // what the unit tests assert against. Pass &MetricsRegistry::Global()
  // (as resacc_serve does) to expose the service alongside the solver and
  // walk-engine series in one scrape. Two services sharing one registry
  // must use distinct prefixes, or their series collide.
  MetricsRegistry* metrics_registry = nullptr;

  // Prefix of every metric this service registers, e.g.
  // `resacc_serve_completed_total`.
  std::string metrics_prefix = "resacc_serve";
};

struct QueryRequest {
  NodeId source = 0;
  // 0 requests the full score vector. k > 0 selects top-k mode: the
  // response carries the k best entries with per-entry bound certificates
  // (QueryResponse::topk, mirrored into ::top) and `scores` stays null —
  // the solver terminates early on a separation certificate instead of
  // materializing the n-vector (docs/QUERY_MODES.md "Top-k").
  std::size_t top_k = 0;
  // Relative deadline from submission; 0 falls back to the service
  // default. Coalesced requests share the leader's deadline.
  double deadline_seconds = 0.0;
  // Nonzero registers the request for Cancel(request_id). Ids are chosen
  // by the caller and must be unique among in-flight requests (a reused id
  // simply re-points the registration). Requests answered synchronously
  // (cache hit, rejection) are never registered — there is nothing left
  // to cancel.
  std::uint64_t request_id = 0;
  // Accept a partial result instead of an error when the deadline fires
  // mid-compute: the response comes back status-OK with `degraded` set and
  // `achieved_epsilon` reporting the honest (weaker) accuracy bound.
  bool allow_degraded = false;
  // Tenant this request bills to (ServeOptions::tenant_weights): selects
  // its fair-queue lane and metric labels. Empty or unknown names map to
  // the default lane. Ignored when no tenants are configured.
  std::string tenant{};
};

struct QueryResponse {
  Status status;
  // Full RWR vector, shared with the cache (immutable; eviction never
  // invalidates it). Null unless status.ok() — and null in top-k mode,
  // where `topk` is the payload.
  std::shared_ptr<const std::vector<Score>> scores;
  // Top-k mode payload: entries with bound certificates, shared with the
  // cache. May carry MORE than top_k entries when the request coalesced
  // onto (or hit) a wider stored top-k' whose k-prefix alone does not
  // separate (topk->k says how many; the set is still certified/bounded
  // as documented on TopKResult).
  std::shared_ptr<const TopKResult> topk;
  // Convenience (node, estimate) pairs, descending; filled in top-k mode.
  std::vector<std::pair<NodeId, Score>> top;

  bool cache_hit = false;
  bool coalesced = false;
  // Submit-to-completion wall seconds as observed by this client.
  double latency_seconds = 0.0;

  // Set on OK responses whose computation was truncated (deadline with
  // allow_degraded, or a solver-level time budget): `scores` misses
  // `uncorrected_mass` of probability mass and satisfies the weaker bound
  // `achieved_epsilon` instead of the configured epsilon. Degraded
  // results are never cached — only full-accuracy vectors enter the
  // cache. achieved_epsilon is also filled on complete responses (then it
  // equals the configured epsilon; 0 for non-ResAcc/FORA/MC backends that
  // predate the contract).
  bool degraded = false;
  double achieved_epsilon = 0.0;
  Score uncorrected_mass = 0.0;
  // Served from a cache entry older than cache_ttl_seconds because the
  // queue was past the overload high-water mark.
  bool stale = false;
  // The latency split: seconds the job waited for a worker vs. seconds
  // inside the solver. Zero for cache hits (neither happened) and for
  // coalesced followers (they share the leader's job).
  double queue_wait_seconds = 0.0;
  double compute_seconds = 0.0;
};

// Long-lived, thread-safe serving front-end over the index-free solver —
// the property that makes serving attractive here: there is no index to
// rebuild, so a service is just workers + graph, ready at construction.
//
// Lifecycle: construct (spins up workers) -> Submit/Query from any number
// of client threads -> Stop (drains the queue, joins workers; also run by
// the destructor). After Stop, Submit fails with kFailedPrecondition.
//
// Determinism: workers run identically-configured solvers whose randomness
// is forked per source (resacc_solver.cc), so a response is bit-identical
// to a fresh single-threaded ResAccSolver::Query with the same config —
// regardless of which worker ran it, of interleaving, and of whether it
// was served from the cache or a coalesced computation. The walk engine is
// itself bit-identical for every options.solver.walk_threads value
// (walk_engine.h), so that knob may differ between service and reference
// without breaking the equality — but leave it at 1 here: the service
// already runs one solver per worker, and nesting walk parallelism inside
// worker parallelism oversubscribes the machine without helping latency.
class QueryService {
 public:
  QueryService(const Graph& graph, const RwrConfig& config,
               const ServeOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Non-blocking submission. The returned future always becomes ready:
  // with scores, or with a non-OK status (kResourceExhausted on queue
  // overflow, kDeadlineExceeded on expiry, kCancelled via Cancel(),
  // kInvalidArgument, kFailedPrecondition after Stop).
  std::future<QueryResponse> Submit(const QueryRequest& request);

  // Blocking convenience wrapper around Submit.
  QueryResponse Query(const QueryRequest& request);

  // Cancels the in-flight request registered under `request_id` (see
  // QueryRequest::request_id): its future resolves promptly with
  // kCancelled. Only that caller is affected — a coalesced computation
  // keeps running for its other waiters and is itself cancelled
  // (cooperatively, at the next phase/block boundary) only when its last
  // waiter leaves. Returns false when the id is unknown — never submitted,
  // already completed, or already cancelled.
  bool Cancel(std::uint64_t request_id);

  // Point-in-time view of the service assembled from the metrics registry
  // — the registry is the single source of truth; this struct is a
  // convenience projection of it (server_stats.h renders it for humans).
  ServerStats Snapshot() const;

  // The registry holding this service's series (owned or shared per
  // ServeOptions::metrics_registry). Scrape with RenderPrometheus().
  MetricsRegistry& metrics() const { return registry_; }

  // Drains queued work, stops the workers. Idempotent, thread-safe.
  void Stop();

  // Dynamic graphs: points the service at a new graph version.
  // `snapshot` must be self-contained (MutableGraphView::Snapshot() —
  // it keeps its base alive); `delta` is what changed since the previous
  // call, with delta.epoch the snapshot's content epoch.
  //
  // Three situations, distinguished by the delta:
  //   * content changed (delta non-empty): workers rebuild their solver
  //     before their next job, and the cache runs the epoch transition —
  //     targeted promotion or full flush per ServeOptions::invalidation.
  //     In-flight jobs that already started keep computing against their
  //     pinned older snapshot and insert under the OLD epoch, where new
  //     lookups (which use the new epoch) can no longer see them, and
  //     Submit refuses to coalesce new requests onto them (Job::
  //     compute_epoch): a mutation can never cause a stale answer, only
  //     a wasted compute.
  //   * compaction swap (delta empty, epoch unchanged): workers re-point
  //     to the folded base; the cache is untouched — the content is
  //     identical, so every entry stays valid.
  //   * AddNode (delta.nodes_added): score-vector lengths change; every
  //     old-epoch entry is dropped regardless of mode.
  void UpdateGraph(Graph snapshot, const GraphDelta& delta);

  std::size_t num_workers() const { return solvers_.size(); }
  // The graph version the service currently answers against (pinned; safe
  // to use after further UpdateGraph calls) and its content epoch.
  Graph graph() const;
  std::uint64_t graph_epoch() const;
  const RwrConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  // One graph version. Workers pin the state their solver was built
  // against; UpdateGraph publishes a new one.
  struct GraphState {
    Graph graph;
    std::uint64_t epoch = 0;
    GraphState(Graph g, std::uint64_t e) : graph(std::move(g)), epoch(e) {}
  };

  struct Waiter {
    std::promise<QueryResponse> promise;
    std::size_t top_k = 0;
    Clock::time_point submit_time;
    bool coalesced = false;
    std::uint64_t request_id = 0;
    bool allow_degraded = false;
    // Fair-queue lane / tenant the waiter bills to. A waiter coalesced
    // onto another tenant's job still carries its own lane, so tenant
    // metrics attribute by requester, not by whichever job computed.
    std::size_t lane = 0;
  };

  // One scheduled computation; coalesced requests append Waiters. The
  // token carries the job's deadline into the solver and is tripped by
  // Cancel() once no waiter remains.
  struct Job {
    // compute_epoch value while the job is still queued: no worker has
    // pinned a graph state for it yet, so it will compute against the
    // newest state at dequeue time.
    static constexpr std::uint64_t kEpochUnset = ~std::uint64_t{0};

    NodeId source = 0;
    // 0 = full-vector job; > 0 = top-k job producing a TopKResult with
    // that k. Submit only coalesces shape-compatible requests (full onto
    // full; top-k onto full or onto top-k' with k' >= k).
    std::size_t top_k = 0;
    CancellationToken token;
    Clock::time_point enqueue_time;
    std::vector<Waiter> waiters;
    // Epoch of the graph state the worker pinned for this job, stamped at
    // dequeue. Submit refuses to coalesce onto a job already computing
    // against an older epoch than the current one — otherwise a request
    // arriving after UpdateGraph could be answered with pre-mutation
    // scores (the one path where coalescing could serve a stale answer).
    std::atomic<std::uint64_t> compute_epoch{kEpochUnset};
  };

  // What the worker (or the queued-expiry path) hands to FinalizeJob: the
  // solver outcome plus the latency split.
  struct Completion {
    Status status;
    // Exactly one is set on a successful compute: `scores` for full jobs,
    // `topk` for top-k jobs (a waiter coalesced across shapes is bridged
    // in MakeResponse).
    std::shared_ptr<const std::vector<Score>> scores;
    std::shared_ptr<const TopKResult> topk;
    bool degraded = false;
    double achieved_epsilon = 0.0;
    Score uncorrected_mass = 0.0;
    double queue_wait_seconds = 0.0;
    double compute_seconds = 0.0;
  };

  // Lane index for a request's tenant name: configured tenants in
  // declaration order, then the implicit default lane (also the answer
  // for empty/unknown names). Always 0 when no tenants are configured.
  std::size_t LaneFor(const std::string& tenant) const;

  std::shared_ptr<const GraphState> CurrentState() const;
  // Builds a worker's solver against `state` (factory or ResAccSolver).
  std::unique_ptr<SsrwrAlgorithm> MakeSolver(const GraphState& state) const;
  std::unique_ptr<BatchSolver> MakeBatchSolver(const GraphState& state) const;

  // True when workers gather multi-source batches (max_batch > 1 and the
  // default ResAcc backend — a custom factory's solver has no batch API).
  bool BatchingEnabled() const {
    return options_.max_batch > 1 && !options_.solver_factory;
  }

  void WorkerLoop(std::size_t worker_index);
  // Runs `live` (the non-expired gathered jobs) on worker
  // `worker_index`'s solver — serial for one job, batched for several —
  // and finalizes each with its completion. `queue_waits[i]` is job i's
  // already-recorded queue wait; `epoch` the pinned graph epoch cache
  // inserts go under.
  void ComputeJobs(std::size_t worker_index,
                   const std::vector<std::shared_ptr<Job>>& live,
                   const std::vector<double>& queue_waits,
                   std::uint64_t epoch);
  // Publishes the completion to every remaining waiter and retires the job
  // from the in-flight and request-id tables. Waiters that set
  // allow_degraded receive a deadline-truncated partial result as OK +
  // degraded; the rest receive the bare error.
  void FinalizeJob(const std::shared_ptr<Job>& job,
                   const Completion& completion);
  QueryResponse MakeResponse(const Completion& completion,
                             const Waiter& waiter) const;

  const RwrConfig config_;
  const ServeOptions options_;
  const std::uint64_t config_hash_;

  // Current graph version; swapped whole by UpdateGraph under mutex_.
  // Workers pin the state each solver was built against, so a swap never
  // pulls the graph out from under a running solve.
  std::shared_ptr<const GraphState> graph_state_;

  // Worker-private solvers; slot i is rebuilt by worker i when it
  // observes a newer graph state (worker_states_[i] tracks which state
  // slot i's solver answers against).
  std::vector<std::unique_ptr<SsrwrAlgorithm>> solvers_;
  // Worker-private batch solvers, built only when BatchingEnabled();
  // rebuilt alongside solvers_ on graph updates.
  std::vector<std::unique_ptr<BatchSolver>> batch_solvers_;
  std::vector<std::shared_ptr<const GraphState>> worker_states_;
  // Per-tenant lanes with weighted fair service; one weight-1 lane when
  // no tenants are configured (then it is exactly the old FIFO queue).
  WeightedFairQueue<std::shared_ptr<Job>> queue_;
  ResultCache cache_;
  std::unique_ptr<ThreadPool> pool_;

  // Guards inflight_; never held during a solver call. stopped_ is also
  // only written under it, but read lock-free for the Submit fast path.
  mutable std::mutex mutex_;
  std::unordered_map<NodeId, std::shared_ptr<Job>> inflight_;
  // request_id -> the job carrying that waiter, maintained for Cancel();
  // entries are erased when the job finalizes or the waiter is cancelled.
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> by_request_id_;
  std::atomic<bool> stopped_{false};

  Timer uptime_;

  // Service metrics, owned by the registry (ServerStats is a view of
  // these, not a parallel set of counters). Declared after registry_ —
  // the references are bound from it in the constructor init list.
  std::unique_ptr<MetricsRegistry> owned_registry_;  // null when shared
  MetricsRegistry& registry_;
  Counter& submitted_;
  Counter& completed_;
  Counter& rejected_;
  Counter& expired_;
  Counter& coalesced_;
  Counter& computed_;
  Counter& degraded_;
  Counter& cancelled_;
  Counter& stale_served_;
  Counter& invalidated_;
  Counter& cache_kept_;
  Counter& batched_queries_;
  Counter& topk_queries_;
  LatencyHistogram& latency_;
  LatencyHistogram& queue_wait_;
  LatencyHistogram& compute_hist_;
  // Batch sizes recorded as plain numbers (jobs per gather); the mean is
  // exact and the quantiles bucket-resolution (~8%), which is enough to
  // see whether batching is forming.
  LatencyHistogram& batch_size_;
  // Per-tenant labeled series, indexed by lane; empty when no tenants are
  // configured. The last lane is the implicit default tenant.
  struct TenantMetrics {
    Counter* submitted = nullptr;
    Counter* completed = nullptr;
    Counter* rejected = nullptr;
    LatencyHistogram* latency = nullptr;
  };
  std::vector<std::string> tenant_names_;  // lane -> name ("" pre-tenants)
  std::vector<TenantMetrics> tenant_metrics_;
  // Callback series (cache/queue/uptime gauges) to unregister before the
  // state they borrow dies.
  std::vector<std::uint64_t> callback_ids_;
};

}  // namespace resacc

#endif  // RESACC_SERVE_QUERY_SERVICE_H_

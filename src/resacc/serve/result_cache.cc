#include "resacc/serve/result_cache.h"

#include <chrono>
#include <cstring>

#include "resacc/util/check.h"
#include "resacc/util/fault_injection.h"

namespace resacc {
namespace {

void HashBytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;  // FNV-1a prime
  }
}

template <typename T>
void HashValue(std::uint64_t& h, const T& value) {
  HashBytes(h, &value, sizeof(value));
}

}  // namespace

std::uint64_t HashQueryConfig(const RwrConfig& config,
                              const ResAccOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  HashValue(h, config.alpha);
  HashValue(h, config.epsilon);
  HashValue(h, config.delta);
  HashValue(h, config.p_f);
  HashValue(h, static_cast<int>(config.dangling));
  HashValue(h, config.seed);
  HashValue(h, options.r_max_hop);
  HashValue(h, options.r_max_f);
  HashValue(h, options.num_hops);
  HashValue(h, options.max_hop_set_fraction);
  HashValue(h, options.walk_scale);
  // Top-k refinement knobs shape cached TopKResult payloads (stage
  // schedule => which entries certify and with what bounds), so they are
  // part of the key even though full vectors ignore them.
  HashValue(h, options.topk.shrink);
  HashValue(h, options.topk.min_r_max_factor);
  HashValue(h, options.topk.max_refine_edge_factor);
  HashValue(h, options.topk.profit_slack);
  HashValue(h, options.use_loop_accumulation);
  HashValue(h, options.use_hop_subgraph);
  HashValue(h, options.use_omfwd);
  // Hybrid local/dense selection knobs (core/power_iter.h): a dense
  // answer is deterministic and a local answer carries walk noise, so the
  // payloads differ bitwise — a cached result must never satisfy a query
  // run under a different selection policy, tolerance or sweep cap.
  HashValue(h, options.hybrid.enable);
  HashValue(h, options.hybrid.cost_ratio);
  HashValue(h, options.hybrid.tolerance);
  HashValue(h, options.hybrid.max_iterations);
  // options.walk_threads is deliberately NOT hashed: the walk engine is
  // bit-identical for every thread count (walk_engine.h), so solvers that
  // differ only in walk_threads produce interchangeable results.
  return h;
}

ResultCache::ResultCache(std::size_t max_bytes, std::size_t num_shards)
    : max_bytes_(max_bytes) {
  RESACC_CHECK(num_shards >= 1);
  shard_budget_ = max_bytes / num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::AgedValue ResultCache::LookupWithAge(const CacheKey& key) {
  if (max_bytes_ == 0) return {};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Chaos site: a forced miss models a cache wiped or unreachable. The
  // entry stays resident (and correct) for later lookups.
  if (RESACC_FAULT("result_cache.lookup_miss")) {
    ++shard.misses;
    return {};
  }
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->value == nullptr) {
    // A top-k-only entry cannot answer a full-vector probe; the recompute
    // will upgrade it via Insert.
    ++shard.misses;
    return {};
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return {it->second->value,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        it->second->inserted)
              .count()};
}

ResultCache::AgedTopK ResultCache::LookupTopK(const CacheKey& key,
                                              std::size_t k) {
  if (max_bytes_ == 0 || k == 0) return {};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (RESACC_FAULT("result_cache.lookup_miss")) {
    ++shard.misses;
    return {};
  }
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return {};
  }
  Entry& entry = *it->second;
  AgedTopK out;
  if (entry.value != nullptr) {
    out.scores = entry.value;
  } else if (entry.topk != nullptr && TopKPrefixSatisfies(*entry.topk, k)) {
    out.topk = entry.topk;
  } else {
    // Stored top-k' too narrow (or its certified prefix does not separate
    // at k): recompute; InsertTopK will widen the entry.
    ++shard.misses;
    return {};
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  out.age_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - entry.inserted)
                        .count();
  return out;
}

void ResultCache::Insert(const CacheKey& key, Value value) {
  if (max_bytes_ == 0 || value == nullptr) return;
  const std::size_t bytes = value->size() * sizeof(Score);
  if (bytes > shard_budget_) return;  // would evict the whole shard for one
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);

  const auto now = std::chrono::steady_clock::now();
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.bytes += bytes;
    it->second->value = std::move(value);
    // A full vector answers strictly more probes than any top-k payload
    // under the same key: upgrade in place.
    it->second->topk = nullptr;
    it->second->bytes = bytes;
    it->second->inserted = now;
    // A refresh is a brand-new computation against the entry's epoch: the
    // drift accrued by the *previous* vector across past epoch promotions
    // does not apply to it. Carrying it over would overstate the new
    // vector's invalidation mass and get it dropped (or consume budget)
    // at the next epoch transition for perturbations it never saw.
    it->second->drift = 0.0;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    Entry entry;
    entry.key = key;
    entry.value = std::move(value);
    entry.bytes = bytes;
    entry.inserted = now;
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
  }

  EvictOverBudget(shard);
}

void ResultCache::InsertTopK(const CacheKey& key, TopKValue value) {
  if (max_bytes_ == 0 || value == nullptr) return;
  const std::size_t bytes =
      value->entries.size() * sizeof(TopKEntry) + sizeof(TopKResult);
  if (bytes > shard_budget_) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);

  const auto now = std::chrono::steady_clock::now();
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    // Never downgrade: a resident full vector answers every top-k probe
    // under this key, and a wider stored top-k' answers a superset of the
    // probes this payload could. (The skipped payload may be *fresher*;
    // the age signal then reflects the kept computation, which is the
    // conservative direction for staleness policies.)
    if (entry.value != nullptr) return;
    if (entry.topk != nullptr && entry.topk->k > value->k) return;
    shard.bytes -= entry.bytes;
    shard.bytes += bytes;
    entry.topk = std::move(value);
    entry.bytes = bytes;
    entry.inserted = now;
    entry.drift = 0.0;  // fresh computation against this epoch (see Insert)
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    Entry entry;
    entry.key = key;
    entry.topk = std::move(value);
    entry.bytes = bytes;
    entry.inserted = now;
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
  }

  EvictOverBudget(shard);
}

void ResultCache::EvictOverBudget(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }

  // Chaos site: spuriously evict the LRU tail even under budget. Goes
  // through the same accounting as a real eviction, so chaos_test can
  // assert bytes == sum(entry bytes) survives any schedule of these.
  if (RESACC_FAULT("result_cache.evict") && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCache::InvalidationStats ResultCache::InvalidateEpoch(
    std::uint64_t config_hash, std::uint64_t old_epoch,
    std::uint64_t new_epoch, double drift_budget, const InfluenceFn& influence,
    bool flush_all) {
  InvalidationStats stats;
  if (max_bytes_ == 0 || old_epoch == new_epoch) return stats;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.config_hash != config_hash || it->key.epoch != old_epoch) {
        ++it;
        continue;
      }
      bool keep = false;
      double drift = it->drift;
      // Top-k entries (value == nullptr) are always dropped: the influence
      // bound needs the full score vector, and a k-truncated one would
      // understate the perturbation. Conservative, and top-k recomputes
      // are cheap (that is the point of the mode).
      if (!flush_all && influence != nullptr && it->value != nullptr) {
        drift += influence(*it->value);
        keep = drift <= drift_budget;  // infinite influence never passes
      }
      if (keep) {
        // Rekey in place: shard choice ignores the epoch, so only the
        // index needs to move.
        shard.index.erase(it->key);
        it->key.epoch = new_epoch;
        it->drift = drift;
        shard.index.emplace(it->key, it);
        ++stats.promoted;
        ++it;
      } else {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++stats.dropped;
      }
    }
  }
  return stats;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

ResultCache::Counters ResultCache::counters() const {
  Counters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.bytes += shard->bytes;
    total.entries += shard->lru.size();
  }
  return total;
}

}  // namespace resacc

#ifndef RESACC_SERVE_WORKLOAD_H_
#define RESACC_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "resacc/util/rng.h"
#include "resacc/util/types.h"

namespace resacc {

// Zipfian query-source sampler for serving workloads. Rank r (1-based) is
// drawn with probability proportional to 1 / r^theta — theta 0 is uniform,
// theta around 0.99 is the YCSB-style skew where a handful of hot sources
// dominate, which is what makes result caching and request coalescing pay
// off. Ranks are mapped to node ids through a seeded shuffle so the hot
// set is spread over the graph instead of clustering at low ids.
class ZipfianSources {
 public:
  ZipfianSources(NodeId num_nodes, double theta, std::uint64_t seed);

  // Draws one source using the caller's generator (deterministic given the
  // rng state, so workloads are replayable).
  NodeId Next(Rng& rng) const;

  // Convenience: a replayable batch of `count` sources.
  std::vector<NodeId> Sample(std::size_t count, Rng& rng) const;

  NodeId num_nodes() const {
    return static_cast<NodeId>(permutation_.size());
  }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;        // cdf_[r] = P(rank <= r+1)
  std::vector<NodeId> permutation_;  // rank -> node id
};

}  // namespace resacc

#endif  // RESACC_SERVE_WORKLOAD_H_

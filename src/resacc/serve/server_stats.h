#ifndef RESACC_SERVE_SERVER_STATS_H_
#define RESACC_SERVE_SERVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "resacc/util/histogram.h"

namespace resacc {

// Point-in-time view of a QueryService, cheap enough to take per scrape.
// Counters are cumulative since service construction; `latency` is the
// submit-to-completion distribution of every finished request (cache hits
// included — that is the latency a client saw).
struct ServerStats {
  std::uint64_t submitted = 0;  // accepted into the service
  std::uint64_t completed = 0;  // responded OK (computed, cached, coalesced)
  std::uint64_t rejected = 0;   // backpressure: queue full at submit
  std::uint64_t expired = 0;    // deadline passed (queued or mid-compute)
  std::uint64_t coalesced = 0;  // attached to an identical in-flight query
  std::uint64_t computed = 0;   // solver executions (cache+coalescing saves
                                // show up as completed - computed)
  std::uint64_t degraded = 0;   // answered OK with an achieved-epsilon tag
                                // above the configured bound
  std::uint64_t cancelled = 0;  // resolved with kCancelled via Cancel()
  std::uint64_t stale_served = 0;  // stale cache entries served under
                                   // overload (admission control)

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_entries = 0;

  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t num_workers = 0;

  double uptime_seconds = 0.0;
  // completed / uptime. The benches compute per-window QPS themselves;
  // this is the lifetime average for monitoring.
  double qps = 0.0;

  LatencyHistogram::Snapshot latency;
  // The split of `latency`: time a job spent queued before a worker
  // picked it up (every dequeued job, including ones that expired while
  // waiting — that wait is exactly the interesting number) vs. time
  // inside the solver (computed jobs only). Cache hits appear in
  // neither, so counts differ from `latency`'s.
  LatencyHistogram::Snapshot queue_wait;
  LatencyHistogram::Snapshot compute;

  // hits / (hits + misses); 0 when the cache is disabled or untouched.
  double CacheHitRate() const;

  // Multi-line human-readable rendering for the `stats` protocol verb and
  // the demo binaries.
  std::string ToString() const;

  // Single-line `key=value` rendering for log scraping / loadgen.
  std::string ToLine() const;
};

}  // namespace resacc

#endif  // RESACC_SERVE_SERVER_STATS_H_

#include "resacc/serve/server_stats.h"

#include <cstdio>

namespace resacc {

double ServerStats::CacheHitRate() const {
  const std::uint64_t lookups = cache_hits + cache_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(lookups);
}

std::string ServerStats::ToString() const {
  char buf[960];
  std::snprintf(
      buf, sizeof(buf),
      "requests: submitted=%llu completed=%llu rejected=%llu expired=%llu "
      "cancelled=%llu\n"
      "work:     computed=%llu coalesced=%llu degraded=%llu "
      "stale_served=%llu\n"
      "cache:    hits=%llu misses=%llu hit_rate=%.1f%% evictions=%llu "
      "entries=%zu bytes=%zu\n"
      "queue:    depth=%zu/%zu workers=%zu\n"
      "latency:  %s\n"
      "queue_wait: %s\n"
      "compute:  %s\n"
      "uptime:   %.2fs qps=%.1f",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(computed),
      static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(stale_served),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), CacheHitRate() * 100.0,
      static_cast<unsigned long long>(cache_evictions), cache_entries,
      cache_bytes, queue_depth, queue_capacity, num_workers,
      latency.ToString().c_str(), queue_wait.ToString().c_str(),
      compute.ToString().c_str(), uptime_seconds, qps);
  return buf;
}

std::string ServerStats::ToLine() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu completed=%llu rejected=%llu expired=%llu "
      "cancelled=%llu degraded=%llu stale_served=%llu "
      "computed=%llu coalesced=%llu cache_hits=%llu cache_misses=%llu "
      "hit_rate=%.4f queue_depth=%zu qps=%.2f p50_ms=%.3f p95_ms=%.3f "
      "p99_ms=%.3f queue_wait_p95_ms=%.3f compute_p95_ms=%.3f",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(stale_served),
      static_cast<unsigned long long>(computed),
      static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), CacheHitRate(),
      queue_depth, qps, latency.p50 * 1e3, latency.p95 * 1e3,
      latency.p99 * 1e3, queue_wait.p95 * 1e3, compute.p95 * 1e3);
  return buf;
}

}  // namespace resacc

#ifndef RESACC_NISE_NISE_H_
#define RESACC_NISE_NISE_H_

#include <cstdint>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Configuration of NISE-style overlapping community detection (Whang,
// Gleich & Dhillon [30]) — the paper's application experiment
// (Tables V-VI). This reproduction keeps NISE's pipeline — seeding by
// spread hubs, per-seed expansion ranked by SSRWR, conductance sweep cut —
// and simplifies the filtering/propagation stages (see DESIGN.md).
struct NiseOptions {
  // |C|: number of seeds, hence communities (paper: 200 for DBLP-scale,
  // 10000 for Facebook).
  std::size_t num_communities = 100;
  // Sweep-cut scan length cap; 0 = scan every positively-scored node.
  std::size_t max_sweep_length = 5000;
  // false reproduces "NISE-without-SSRWR" (Table V): candidate nodes are
  // processed in BFS-distance order from the seed instead of by RWR score.
  bool use_ssrwr_ordering = true;
  // Filtering phase: restrict seeding to the largest weakly connected
  // component (NISE's filtering stage, simplified from its biconnected
  // core — see DESIGN.md). Nodes outside it can still be absorbed by
  // propagation.
  bool filter_to_largest_component = true;
  // Propagation phase: after the sweep cuts, attach every node not covered
  // by any community to the community most of its neighbours belong to
  // (iterated until fixpoint), so the cover reaches the whole (reachable)
  // graph as in the published NISE.
  bool propagate_uncovered = true;
};

struct NiseResult {
  std::vector<std::vector<NodeId>> communities;
  // Wall-clock seconds spent inside the SSRWR solver (the cost Table VI
  // attributes to FORA vs ResAcc).
  double ssrwr_seconds = 0.0;
  double total_seconds = 0.0;
};

class Nise {
 public:
  Nise(const Graph& graph, const NiseOptions& options);

  // Seeds by spread hubs: repeatedly take the highest-degree node not yet
  // covered by a previous seed's neighbourhood.
  std::vector<NodeId> SelectSeeds() const;

  // Runs detection using `solver` for the per-seed SSRWR queries
  // (ignored when use_ssrwr_ordering is false).
  NiseResult Detect(SsrwrAlgorithm& solver) const;

  // Neighbourhood-inflated variant (the published NISE's expansion): each
  // seed expands from the *set* {seed} ∪ N(seed) via a seed-set SSRWR
  // query (core/seed_set_query.h) instead of a single-source query.
  // Requires DanglingPolicy::kAbsorb on graphs with sinks.
  NiseResult DetectInflated(const RwrConfig& config) const;

 private:
  // Minimum-conductance prefix of `ordered` (greedy sweep cut).
  std::vector<NodeId> SweepCut(const std::vector<NodeId>& ordered) const;

  // Propagation phase: grows `communities` until every node with a
  // covered neighbour belongs somewhere.
  void Propagate(std::vector<std::vector<NodeId>>& communities) const;

  const Graph& graph_;
  NiseOptions options_;
};

}  // namespace resacc

#endif  // RESACC_NISE_NISE_H_

#include "resacc/nise/nise.h"

#include <algorithm>
#include <deque>

#include "resacc/util/check.h"
#include "resacc/core/seed_set_query.h"
#include "resacc/graph/components.h"
#include "resacc/util/timer.h"
#include "resacc/util/top_k.h"

namespace resacc {

Nise::Nise(const Graph& graph, const NiseOptions& options)
    : graph_(graph), options_(options) {
  RESACC_CHECK(options_.num_communities >= 1);
}

std::vector<NodeId> Nise::SelectSeeds() const {
  // Filtering phase: seeds come from the largest weakly connected
  // component (expansion across tiny satellite components wastes queries).
  std::vector<char> eligible(graph_.num_nodes(), 1);
  if (options_.filter_to_largest_component) {
    const ComponentDecomposition wcc = WeaklyConnectedComponents(graph_);
    const std::uint32_t giant = wcc.LargestComponent();
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      eligible[v] = wcc.component_of[v] == giant ? 1 : 0;
    }
  }

  // Spread hubs: highest-degree nodes whose neighbourhoods do not overlap
  // previously chosen seeds — NISE's recommended seeding strategy.
  std::vector<NodeId> by_degree = graph_.NodesByOutDegreeDesc();
  std::vector<char> covered(graph_.num_nodes(), 0);
  std::vector<NodeId> seeds;
  for (NodeId v : by_degree) {
    if (seeds.size() >= options_.num_communities) break;
    if (!eligible[v] || covered[v] || graph_.OutDegree(v) == 0) continue;
    seeds.push_back(v);
    covered[v] = 1;
    for (NodeId u : graph_.OutNeighbors(v)) covered[u] = 1;
  }
  return seeds;
}

void Nise::Propagate(std::vector<std::vector<NodeId>>& communities) const {
  // community_of holds one covering community per node (the first that
  // claimed it); uncovered nodes join the community holding the plurality
  // of their neighbours, repeated until no reachable node is uncovered.
  constexpr std::uint32_t kUncovered = 0xffffffffu;
  std::vector<std::uint32_t> covered_by(graph_.num_nodes(), kUncovered);
  for (std::uint32_t c = 0; c < communities.size(); ++c) {
    for (NodeId v : communities[c]) {
      if (covered_by[v] == kUncovered) covered_by[v] = c;
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (covered_by[v] != kUncovered) continue;
      // Plurality vote among covered out-neighbours.
      std::uint32_t best = kUncovered;
      std::size_t best_votes = 0;
      for (NodeId u : graph_.OutNeighbors(v)) {
        const std::uint32_t c = covered_by[u];
        if (c == kUncovered) continue;
        std::size_t votes = 0;
        for (NodeId w : graph_.OutNeighbors(v)) {
          votes += covered_by[w] == c ? 1 : 0;
        }
        if (votes > best_votes) {
          best_votes = votes;
          best = c;
        }
      }
      if (best != kUncovered) {
        covered_by[v] = best;
        communities[best].push_back(v);
        changed = true;
      }
    }
  }
}

std::vector<NodeId> Nise::SweepCut(const std::vector<NodeId>& ordered) const {
  RESACC_CHECK(!ordered.empty());
  const double total_volume = static_cast<double>(graph_.num_edges());

  std::vector<char> in_set(graph_.num_nodes(), 0);
  double volume = 0.0;
  double cut = 0.0;
  double best_conductance = 2.0;
  std::size_t best_prefix = 1;

  const std::size_t limit =
      options_.max_sweep_length > 0
          ? std::min(ordered.size(), options_.max_sweep_length)
          : ordered.size();
  for (std::size_t i = 0; i < limit; ++i) {
    const NodeId u = ordered[i];
    // Adding u: its degree joins the volume; edges to existing members
    // stop being cut edges (counted once per direction in a symmetric
    // graph, hence the factor 2).
    std::size_t internal = 0;
    for (NodeId v : graph_.OutNeighbors(u)) internal += in_set[v] ? 1 : 0;
    in_set[u] = 1;
    volume += graph_.OutDegree(u);
    cut += static_cast<double>(graph_.OutDegree(u)) -
           2.0 * static_cast<double>(internal);

    const double denominator = std::min(volume, total_volume - volume + cut);
    if (denominator <= 0.0) continue;
    const double conductance = cut / denominator;
    if (conductance < best_conductance) {
      best_conductance = conductance;
      best_prefix = i + 1;
    }
  }
  return {ordered.begin(), ordered.begin() + static_cast<long>(best_prefix)};
}

NiseResult Nise::Detect(SsrwrAlgorithm& solver) const {
  NiseResult result;
  Timer total;
  const std::vector<NodeId> seeds = SelectSeeds();

  for (NodeId seed : seeds) {
    std::vector<NodeId> ordered;
    if (options_.use_ssrwr_ordering) {
      Timer ssrwr;
      const std::vector<Score> scores = solver.Query(seed);
      result.ssrwr_seconds += ssrwr.ElapsedSeconds();
      // Candidates: positively scored nodes, best first.
      std::size_t positive = 0;
      for (Score s : scores) positive += s > 0.0 ? 1 : 0;
      const std::size_t want =
          options_.max_sweep_length > 0
              ? std::min(positive, options_.max_sweep_length)
              : positive;
      ordered = TopKIndices(scores, want);
    } else {
      // NISE-without-SSRWR: BFS-distance ordering from the seed.
      std::deque<NodeId> queue{seed};
      std::vector<char> visited(graph_.num_nodes(), 0);
      visited[seed] = 1;
      const std::size_t cap = options_.max_sweep_length > 0
                                  ? options_.max_sweep_length
                                  : graph_.num_nodes();
      while (!queue.empty() && ordered.size() < cap) {
        const NodeId u = queue.front();
        queue.pop_front();
        ordered.push_back(u);
        for (NodeId v : graph_.OutNeighbors(u)) {
          if (!visited[v]) {
            visited[v] = 1;
            queue.push_back(v);
          }
        }
      }
    }
    if (ordered.empty()) continue;
    result.communities.push_back(SweepCut(ordered));
  }
  if (options_.propagate_uncovered) Propagate(result.communities);
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

NiseResult Nise::DetectInflated(const RwrConfig& config) const {
  NiseResult result;
  Timer total;
  Rng rng(config.seed ^ 0x1f1a);

  for (NodeId seed : SelectSeeds()) {
    // Inflate: the seed plus its out-neighbourhood.
    std::vector<NodeId> seed_set{seed};
    for (NodeId v : graph_.OutNeighbors(seed)) seed_set.push_back(v);

    Timer ssrwr;
    const SeedSetQueryResult query =
        SeedSetSsrwr(graph_, config, seed_set, /*r_max=*/0.0, rng);
    result.ssrwr_seconds += ssrwr.ElapsedSeconds();

    std::size_t positive = 0;
    for (Score s : query.scores) positive += s > 0.0 ? 1 : 0;
    const std::size_t want =
        options_.max_sweep_length > 0
            ? std::min(positive, options_.max_sweep_length)
            : positive;
    const std::vector<NodeId> ordered = TopKIndices(query.scores, want);
    if (ordered.empty()) continue;
    result.communities.push_back(SweepCut(ordered));
  }
  if (options_.propagate_uncovered) Propagate(result.communities);
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace resacc
